//! # nrp-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 5 and Appendix C) on the synthetic dataset suite.
//!
//! Each `src/bin/*.rs` binary corresponds to one table or figure and prints a
//! CSV-style table with the same rows/series the paper plots; see
//! `EXPERIMENTS.md` at the repository root for the full index and for the
//! paper-vs-measured comparison.
//!
//! Binaries accept `--scale tiny|small|medium|large` (default `small`) so CI
//! can run quickly while users can push towards the paper's regimes, and
//! `--dim <k>` to override the embedding dimensionality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod methods;
pub mod report;

pub use datasets::{BenchDataset, Scale};
pub use report::Table;

/// Parses `--scale`, `--dim` and `--seed` from command-line arguments.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Dataset scale.
    pub scale: Scale,
    /// Embedding dimensionality `k`.
    pub dimension: usize,
    /// RNG seed shared by generators and methods.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            dimension: 32,
            seed: 7,
        }
    }
}

impl HarnessArgs {
    /// Parses the process arguments, falling back to defaults on anything
    /// missing and panicking with a usage message on malformed values.
    pub fn from_env() -> Self {
        let mut args = HarnessArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--scale" => {
                    let value = iter.next().unwrap_or_default();
                    args.scale = match value.as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "medium" => Scale::Medium,
                        "large" => Scale::Large,
                        other => {
                            panic!("unknown scale '{other}' (expected tiny|small|medium|large)")
                        }
                    };
                }
                "--dim" => {
                    args.dimension = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--dim expects an integer"));
                }
                "--seed" => {
                    args.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed expects an integer"));
                }
                "--help" | "-h" => {
                    println!("usage: <bin> [--scale tiny|small|medium|large] [--dim K] [--seed S]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag '{other}'"),
            }
        }
        args
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let args = HarnessArgs::default();
        assert_eq!(args.dimension, 32);
        assert!(matches!(args.scale, Scale::Small));
    }
}
