//! # nrp-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 5 and Appendix C) on the synthetic dataset suite.
//!
//! Each `src/bin/*.rs` binary corresponds to one table or figure and prints a
//! CSV-style table with the same rows/series the paper plots; see
//! `EXPERIMENTS.md` at the repository root for the full index and for the
//! paper-vs-measured comparison.
//!
//! Binaries accept `--scale tiny|small|medium|large` (default `small`) so CI
//! can run quickly while users can push towards the paper's regimes,
//! `--dim <k>` to override the embedding dimensionality, `--seed <s>`,
//! `--threads <t>` for the [`EmbedContext`](nrp_core::EmbedContext) budget,
//! and `--config <file.json|file.toml>` pointing at a [`SweepSpec`] document
//! — a declarative list of [`MethodConfig`](nrp_core::MethodConfig) entries
//! plus sweep-level fields (scale, datasets, seeds, repeats, thread budgets)
//! that replaces each binary's hard-coded method roster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod hotpaths;
pub mod methods;
pub mod report;
pub mod serveload;
pub mod sweep;

pub use datasets::{BenchDataset, Scale};
pub use report::Table;
pub use sweep::{SweepRecord, SweepRunner, SweepSpec};

use nrp_core::{Embedder, MethodConfig};

/// Parses `--scale`, `--dim`, `--seed`, `--threads` and `--config` from
/// command-line arguments.
///
/// Explicit flags win over the sweep file: a field also declared in the
/// `--config` document is used only when the corresponding flag is absent.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset scale.
    pub scale: Scale,
    /// Embedding dimensionality `k`.
    pub dimension: usize,
    /// RNG seed shared by generators and methods.
    pub seed: u64,
    /// Thread budget granted to each embedding run.
    pub threads: usize,
    /// The sweep specification loaded from `--config`, if given.  Its
    /// sweep-level fields are already overridden by any explicit flags, so
    /// reading `scale`/`dimension`/`seeds`/`threads` from here honours the
    /// flags-win precedence.
    pub config: Option<SweepSpec>,
    /// Output CSV path for config-driven sweeps (`--out`).  When the file
    /// already holds records from an interrupted run, the sweep resumes:
    /// completed cells are skipped and new records are appended.
    pub out: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            dimension: 32,
            seed: 7,
            threads: 1,
            config: None,
            out: None,
        }
    }
}

impl HarnessArgs {
    /// The usage message shared by every harness binary.
    pub const USAGE: &'static str = "usage: <bin> [--scale tiny|small|medium|large] [--dim K] \
                                     [--seed S] [--threads T] [--config FILE.json|FILE.toml] \
                                     [--out FILE.csv]";

    /// Parses the process arguments.  On `--help`/`-h` the usage message is
    /// printed and the process exits 0; on any malformed or unknown flag an
    /// error naming that flag is printed to stderr together with the usage
    /// message and the process exits with a non-zero status.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => {
                println!("{}", Self::USAGE);
                std::process::exit(0);
            }
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list.  Returns `Ok(None)` when `--help`/`-h` was
    /// requested, and `Err` with a message naming the offending flag for
    /// unknown flags, missing values and malformed values.
    pub fn parse(args: &[String]) -> Result<Option<Self>, String> {
        let mut scale: Option<Scale> = None;
        let mut dimension: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut threads: Option<usize> = None;
        let mut config_path: Option<String> = None;
        let mut out_path: Option<String> = None;
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value_of = |flag: &str| -> Result<&String, String> {
                iter.next()
                    .ok_or_else(|| format!("flag `{flag}` expects a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    let value = value_of("--scale")?;
                    scale = Some(Scale::parse(value).ok_or_else(|| {
                        format!("`--scale` expects tiny|small|medium|large, got `{value}`")
                    })?);
                }
                "--dim" => {
                    let value = value_of("--dim")?;
                    dimension = Some(value.parse().map_err(|_| {
                        format!("`--dim` expects a positive integer, got `{value}`")
                    })?);
                }
                "--seed" => {
                    let value = value_of("--seed")?;
                    seed = Some(value.parse().map_err(|_| {
                        format!("`--seed` expects an unsigned integer, got `{value}`")
                    })?);
                }
                "--threads" => {
                    let value = value_of("--threads")?;
                    let parsed: usize = value.parse().map_err(|_| {
                        format!("`--threads` expects a positive integer, got `{value}`")
                    })?;
                    if parsed == 0 {
                        return Err("`--threads` expects a positive integer, got `0`".into());
                    }
                    threads = Some(parsed);
                }
                "--config" => {
                    config_path = Some(value_of("--config")?.clone());
                }
                "--out" => {
                    out_path = Some(value_of("--out")?.clone());
                }
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        let mut config = match config_path {
            Some(path) => Some(SweepSpec::from_path(std::path::Path::new(&path))?),
            None => None,
        };
        // Push explicit flags down into the spec so consumers that iterate
        // its seed/thread lists (the SweepRunner, fig10's budget ladder) see
        // the same precedence as the resolved scalar fields below: an
        // explicit flag always beats the sweep file.
        if let Some(spec) = config.as_mut() {
            if let Some(scale) = scale {
                spec.scale = Some(scale);
            }
            if let Some(dimension) = dimension {
                spec.dimension = Some(dimension);
            }
            if let Some(seed) = seed {
                spec.seeds = vec![seed];
            }
            if let Some(threads) = threads {
                spec.threads = vec![threads];
            }
        }
        let spec = config.as_ref();
        let defaults = HarnessArgs::default();
        Ok(Some(HarnessArgs {
            scale: scale
                .or_else(|| spec.and_then(|s| s.scale))
                .unwrap_or(defaults.scale),
            dimension: dimension
                .or_else(|| spec.and_then(|s| s.dimension))
                .unwrap_or(defaults.dimension),
            seed: seed
                .or_else(|| spec.and_then(|s| s.seeds.first().copied()))
                .unwrap_or(defaults.seed),
            threads: threads
                .or_else(|| spec.and_then(|s| s.threads.first().copied()))
                .unwrap_or(defaults.threads),
            config,
            out: out_path,
        }))
    }

    /// The method configurations the harness should sweep at dimension
    /// `dimension`: the `--config` document's entries when present (with the
    /// dimension and harness seed applied uniformly, like the hard-coded
    /// roster), else [`methods::roster_configs`].
    pub fn roster_configs_at(&self, dimension: usize) -> Vec<MethodConfig> {
        match &self.config {
            Some(spec) => spec
                .methods
                .iter()
                .cloned()
                .map(|mut config| {
                    config.set_dimension(dimension);
                    config.set_seed(self.seed);
                    config
                })
                .collect(),
            None => methods::roster_configs(dimension, self.seed),
        }
    }

    /// [`HarnessArgs::roster_configs_at`] at the harness dimension.
    pub fn roster_configs(&self) -> Vec<MethodConfig> {
        self.roster_configs_at(self.dimension)
    }

    /// Builds the effective roster at dimension `dimension` through the
    /// method registry, exiting with a message on an invalid `--config`
    /// entry (a harness binary has nothing better to do with one).
    pub fn roster_at(&self, dimension: usize) -> Vec<Box<dyn Embedder>> {
        nrp_baselines::register_baselines();
        self.roster_configs_at(dimension)
            .iter()
            .map(|config| {
                config.build().unwrap_or_else(|err| {
                    eprintln!(
                        "error: cannot build `{}` at dimension {dimension}: {err}",
                        config.method_name()
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    }

    /// [`HarnessArgs::roster_at`] at the harness dimension.
    pub fn roster(&self) -> Vec<Box<dyn Embedder>> {
        self.roster_at(self.dimension)
    }

    /// The NRP parameters the NRP-only sweep bins (Figs. 8, 10, 11) anchor
    /// their per-parameter sweeps at: the `--config` document's first `NRP`
    /// entry when present, else paper defaults, with the harness dimension
    /// and seed applied either way.  Exits with a message on invalid
    /// parameters (a harness binary has nothing better to do with them).
    pub fn nrp_base_params(&self) -> nrp_core::NrpParams {
        let mut params = self
            .config
            .as_ref()
            .and_then(|spec| {
                spec.methods
                    .iter()
                    .find_map(methods::nrp_params_from_config)
            })
            .unwrap_or_default();
        params.dimension = self.dimension;
        params.seed = self.seed;
        if let Err(err) = params.validate() {
            eprintln!("error: invalid NRP base parameters: {err}");
            std::process::exit(2);
        }
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_sane() {
        let args = HarnessArgs::default();
        assert_eq!(args.dimension, 32);
        assert_eq!(args.threads, 1);
        assert!(matches!(args.scale, Scale::Small));
        assert!(args.config.is_none());
    }

    #[test]
    fn parse_reads_every_flag() {
        let args = HarnessArgs::parse(&strings(&[
            "--scale",
            "tiny",
            "--dim",
            "16",
            "--seed",
            "3",
            "--threads",
            "2",
        ]))
        .unwrap()
        .unwrap();
        assert!(matches!(args.scale, Scale::Tiny));
        assert_eq!(args.dimension, 16);
        assert_eq!(args.seed, 3);
        assert_eq!(args.threads, 2);
    }

    #[test]
    fn help_is_not_an_error() {
        assert!(HarnessArgs::parse(&strings(&["--help"])).unwrap().is_none());
        assert!(HarnessArgs::parse(&strings(&["-h"])).unwrap().is_none());
    }

    #[test]
    fn unknown_flags_are_named_in_the_error() {
        // Regression: unknown flags used to panic with an opaque message and
        // missing values turned into empty strings with a confusing parse
        // panic.
        let err = HarnessArgs::parse(&strings(&["--sclae", "tiny"])).unwrap_err();
        assert!(err.contains("--sclae"), "{err}");
    }

    #[test]
    fn missing_values_are_reported_not_defaulted() {
        let err = HarnessArgs::parse(&strings(&["--scale"])).unwrap_err();
        assert!(
            err.contains("--scale") && err.contains("expects a value"),
            "{err}"
        );
        let err = HarnessArgs::parse(&strings(&["--dim"])).unwrap_err();
        assert!(err.contains("--dim"), "{err}");
    }

    #[test]
    fn malformed_values_name_the_flag_and_value() {
        let err = HarnessArgs::parse(&strings(&["--dim", "sixteen"])).unwrap_err();
        assert!(err.contains("--dim") && err.contains("sixteen"), "{err}");
        let err = HarnessArgs::parse(&strings(&["--scale", "giant"])).unwrap_err();
        assert!(err.contains("giant"), "{err}");
        let err = HarnessArgs::parse(&strings(&["--threads", "0"])).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn missing_config_file_is_an_error() {
        let err = HarnessArgs::parse(&strings(&["--config", "/no/such/file.json"])).unwrap_err();
        assert!(err.contains("/no/such/file.json"), "{err}");
    }

    #[test]
    fn roster_configs_fall_back_to_the_hard_coded_roster() {
        let args = HarnessArgs::default();
        let configs = args.roster_configs();
        assert_eq!(configs.len(), 11);
        for config in &configs {
            assert_eq!(config.dimension(), args.dimension);
            assert_eq!(config.seed(), args.seed);
        }
    }
}
