//! Config-file-driven benchmark sweeps.
//!
//! A [`SweepSpec`] is a declarative experiment: a list of
//! [`MethodConfig`](nrp_core::MethodConfig) documents plus sweep-level fields
//! (dataset scale and filter, seeds, repeats, thread budgets, a uniform
//! dimension override).  Every harness binary accepts `--config <file>`
//! pointing at one, so the paper's (method × dataset × hyper-parameter) grid
//! is a *data* change, not a code change.
//!
//! JSON form:
//!
//! ```json
//! {
//!   "name": "fig7-roster",
//!   "scale": "small",
//!   "datasets": ["sbm-directed"],
//!   "dimension": 32,
//!   "seeds": [7, 8],
//!   "repeats": 1,
//!   "threads": [1, 2],
//!   "methods": [
//!     {"method": "NRP"},
//!     {"method": "DeepWalk", "walks_per_node": 5}
//!   ]
//! }
//! ```
//!
//! TOML form: the sweep-level fields as flat `key = value` lines followed by
//! one `[[methods]]` section per entry, each section using the flat grammar
//! of [`MethodConfig::from_toml`].
//!
//! [`SweepRunner`] executes the grid through the method registry under an
//! [`EmbedContext`] and streams one [`RunMetadata`] record per run as
//! RFC-4180 CSV (dataset, repeat, method, config, seed, threads, per-stage
//! wall clock, total, status).

use std::collections::HashSet;
use std::io::Write;
use std::path::Path;

use nrp_core::{flat_toml_to_value, EmbedContext, MethodConfig, RunMetadata};

use crate::datasets::{suite, BenchDataset, Scale};
use crate::report::{csv_line, parse_csv_record};
use crate::HarnessArgs;

/// Identity of one sweep cell: (dataset, repeat, method, seed, threads).
/// The `config` column is derived from (method, seed, dimension), so it is
/// not part of the identity.
pub type SweepCell = (String, usize, String, u64, usize);

/// A declarative sweep: sweep-level execution fields plus the method roster.
///
/// Every field except `methods` is optional; absent fields fall back to the
/// harness defaults (or flags) at run time.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Human-readable sweep name, echoed in logs.
    pub name: Option<String>,
    /// Dataset scale (overridden by an explicit `--scale` flag).
    pub scale: Option<Scale>,
    /// Case-sensitive substrings selecting datasets of the suite by name;
    /// empty selects the whole suite.
    pub datasets: Vec<String>,
    /// Uniform dimension applied to every method entry (overridden by an
    /// explicit `--dim` flag).
    pub dimension: Option<usize>,
    /// Seeds to sweep; empty means the harness seed.
    pub seeds: Vec<u64>,
    /// Repeats per (dataset, method, seed, threads) cell; at least 1.
    pub repeats: usize,
    /// Thread budgets to sweep; empty means the harness budget.
    pub threads: Vec<usize>,
    /// The method roster (non-empty).
    pub methods: Vec<MethodConfig>,
}

impl SweepSpec {
    /// Loads a spec from a `.json` or `.toml` file, dispatching on the
    /// extension.
    pub fn from_path(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read sweep config `{}`: {e}", path.display()))?;
        let parsed = match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json(&text),
            Some("toml") => Self::from_toml(&text),
            _ => Err("expected a `.json` or `.toml` extension".to_string()),
        };
        parsed.map_err(|e| format!("invalid sweep config `{}`: {e}", path.display()))
    }

    /// Parses the JSON form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value: serde::Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        Self::from_value(&value)
    }

    /// Parses the TOML form: flat sweep-level `key = value` lines followed
    /// by one `[[methods]]` section per method entry.
    pub fn from_toml(text: &str) -> Result<Self, String> {
        let mut sections = text.split("[[methods]]");
        let head = sections.next().unwrap_or_default();
        let head_value = flat_toml_to_value(head).map_err(|e| e.to_string())?;
        let serde::Value::Object(head_object) = head_value else {
            unreachable!("flat_toml_to_value returns objects");
        };
        let mut object = head_object;
        let methods: Vec<serde::Value> = sections
            .map(|section| {
                MethodConfig::from_toml(section)
                    .map(|config| serde::Serialize::to_value(&config))
                    .map_err(|e| e.to_string())
            })
            .collect::<Result<_, String>>()?;
        object.insert("methods", serde::Value::Array(methods));
        Self::from_value(&serde::Value::Object(object))
    }

    /// Builds a spec from its parsed value tree, rejecting unknown fields.
    pub fn from_value(value: &serde::Value) -> Result<Self, String> {
        let object = value
            .as_object()
            .ok_or_else(|| format!("expected a sweep object, got {}", value.kind()))?;
        const FIELDS: &[&str] = &[
            "name",
            "scale",
            "datasets",
            "dimension",
            "seeds",
            "repeats",
            "threads",
            "methods",
        ];
        for (key, _) in object.iter() {
            if !FIELDS.contains(&key) {
                return Err(format!(
                    "unknown sweep field `{key}` (expected one of: {})",
                    FIELDS.join(", ")
                ));
            }
        }
        let name = match object.get("name") {
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| format!("`name` must be a string, got {}", v.kind()))?
                    .to_string(),
            ),
            None => None,
        };
        let scale = match object.get("scale") {
            Some(v) => {
                let text = v
                    .as_str()
                    .ok_or_else(|| format!("`scale` must be a string, got {}", v.kind()))?;
                Some(Scale::parse(text).ok_or_else(|| {
                    format!("`scale` must be tiny|small|medium|large, got `{text}`")
                })?)
            }
            None => None,
        };
        let datasets: Vec<String> = match object.get("datasets") {
            Some(v) => serde::Deserialize::from_value(v).map_err(|e| format!("`datasets`: {e}"))?,
            None => Vec::new(),
        };
        let dimension = match object.get("dimension") {
            Some(v) => {
                Some(serde::Deserialize::from_value(v).map_err(|e| format!("`dimension`: {e}"))?)
            }
            None => None,
        };
        let seeds: Vec<u64> = match object.get("seeds") {
            Some(v) => serde::Deserialize::from_value(v).map_err(|e| format!("`seeds`: {e}"))?,
            None => Vec::new(),
        };
        let repeats: usize = match object.get("repeats") {
            Some(v) => serde::Deserialize::from_value(v).map_err(|e| format!("`repeats`: {e}"))?,
            None => 1,
        };
        if repeats == 0 {
            return Err("`repeats` must be at least 1".into());
        }
        let threads: Vec<usize> = match object.get("threads") {
            Some(v) => serde::Deserialize::from_value(v).map_err(|e| format!("`threads`: {e}"))?,
            None => Vec::new(),
        };
        if threads.contains(&0) {
            return Err("`threads` entries must be positive".into());
        }
        let methods_value = object.get("methods").ok_or("missing `methods` list")?;
        let methods_array = methods_value
            .as_array()
            .ok_or_else(|| format!("`methods` must be an array, got {}", methods_value.kind()))?;
        let methods: Vec<MethodConfig> = methods_array
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                serde::Deserialize::from_value(entry).map_err(|e| format!("methods[{i}]: {e}"))
            })
            .collect::<Result<_, String>>()?;
        if methods.is_empty() {
            return Err("`methods` must not be empty".into());
        }
        Ok(SweepSpec {
            name,
            scale,
            datasets,
            dimension,
            seeds,
            repeats,
            threads,
            methods,
        })
    }

    /// Serializes the spec back to pretty JSON (used to generate the sample
    /// configs and in round-trip tests).
    pub fn to_json_pretty(&self) -> String {
        let mut object = serde::Map::new();
        if let Some(name) = &self.name {
            object.insert("name", serde::Value::String(name.clone()));
        }
        if let Some(scale) = self.scale {
            object.insert("scale", serde::Value::String(scale.as_str().to_string()));
        }
        if !self.datasets.is_empty() {
            object.insert("datasets", serde::Serialize::to_value(&self.datasets));
        }
        if let Some(dimension) = self.dimension {
            object.insert("dimension", serde::Serialize::to_value(&dimension));
        }
        if !self.seeds.is_empty() {
            object.insert("seeds", serde::Serialize::to_value(&self.seeds));
        }
        if self.repeats != 1 {
            object.insert("repeats", serde::Serialize::to_value(&self.repeats));
        }
        if !self.threads.is_empty() {
            object.insert("threads", serde::Serialize::to_value(&self.threads));
        }
        object.insert(
            "methods",
            serde::Value::Array(
                self.methods
                    .iter()
                    .map(serde::Serialize::to_value)
                    .collect(),
            ),
        );
        serde_json::to_string_pretty(&serde::Value::Object(object))
            .expect("sweep specs serialize to JSON")
    }
}

/// One executed cell of the sweep grid.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// Dataset name the run embedded.
    pub dataset: String,
    /// Zero-based repeat index.
    pub repeat: usize,
    /// Method name of the entry.
    pub method: String,
    /// Run metadata on success.
    pub metadata: Option<RunMetadata>,
    /// The failure message on error.
    pub error: Option<String>,
}

/// Executes a [`SweepSpec`] over the synthetic dataset suite, streaming one
/// CSV record per run.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    spec: SweepSpec,
}

impl SweepRunner {
    /// Creates a runner for a spec.
    pub fn new(spec: SweepSpec) -> Self {
        Self { spec }
    }

    /// The spec being executed.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The CSV column names emitted by [`SweepRunner::run`], in order:
    /// sweep-level columns, then [`RunMetadata::csv_header`], then `status`.
    pub fn csv_header() -> Vec<&'static str> {
        let mut header = vec!["dataset", "repeat"];
        header.extend_from_slice(RunMetadata::csv_header());
        header.push("status");
        header
    }

    /// Runs every (dataset × method × seed × threads × repeat) cell of the
    /// grid, writing the header line and one RFC-4180 CSV record per run to
    /// `out` as soon as the run finishes (flushed per line, so progress is
    /// visible while the sweep executes).  Harness-level fields absent from
    /// the spec fall back to `defaults`.
    ///
    /// A run that fails to build or embed is recorded with an `err:` status
    /// instead of aborting the sweep.
    pub fn run(
        &self,
        defaults: &HarnessArgs,
        out: &mut dyn Write,
    ) -> Result<Vec<SweepRecord>, String> {
        self.run_with_skip(defaults, out, &HashSet::new(), true)
    }

    /// Parses the completed cells out of a previously written sweep CSV.
    ///
    /// A cell counts as completed only when its `status` column is exactly
    /// `ok`: failed runs (`err:…`), the header line, and any truncated
    /// trailing record (a sweep killed mid-write) are all ignored, so a
    /// resumed sweep retries them.
    pub fn completed_cells(text: &str) -> HashSet<SweepCell> {
        let mut cells = HashSet::new();
        for line in text.lines() {
            let Ok(record) = parse_csv_record(line) else {
                continue;
            };
            // dataset, repeat, method, config, seed, threads, stages, total, status
            if record.len() != Self::csv_header().len() || record[8] != "ok" {
                continue;
            }
            let (Ok(repeat), Ok(seed), Ok(threads)) = (
                record[1].parse::<usize>(),
                record[4].parse::<u64>(),
                record[5].parse::<usize>(),
            ) else {
                continue;
            };
            cells.insert((record[0].clone(), repeat, record[2].clone(), seed, threads));
        }
        cells
    }

    /// Resumable variant of [`SweepRunner::run`] writing to a file: cells
    /// already recorded as `ok` in an existing `path` are skipped, and new
    /// records are appended after the existing ones.  A missing (or empty)
    /// file behaves exactly like a fresh [`SweepRunner::run`].
    ///
    /// Returns the records actually executed in this call — resuming a
    /// finished sweep returns an empty list and leaves the file untouched.
    pub fn run_resumable(
        &self,
        defaults: &HarnessArgs,
        path: &Path,
    ) -> Result<Vec<SweepRecord>, String> {
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read sweep CSV `{}`: {e}", path.display())),
        };
        let done = Self::completed_cells(&existing);
        let mut out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open sweep CSV `{}`: {e}", path.display()))?;
        if !existing.is_empty() && !existing.ends_with('\n') {
            // A truncated trailing record (no newline) must not have the
            // first resumed record glued onto it.
            writeln!(out).map_err(|e| format!("cannot write sweep CSV: {e}"))?;
        }
        self.run_with_skip(defaults, &mut out, &done, existing.is_empty())
    }

    fn run_with_skip(
        &self,
        defaults: &HarnessArgs,
        out: &mut dyn Write,
        skip: &HashSet<SweepCell>,
        write_header: bool,
    ) -> Result<Vec<SweepRecord>, String> {
        nrp_baselines::register_baselines();
        let spec = &self.spec;
        let scale = spec.scale.unwrap_or(defaults.scale);
        let seeds = if spec.seeds.is_empty() {
            vec![defaults.seed]
        } else {
            spec.seeds.clone()
        };
        let thread_budgets = if spec.threads.is_empty() {
            vec![defaults.threads.max(1)]
        } else {
            spec.threads.clone()
        };
        let suite = suite(scale, defaults.seed);
        let selected: Vec<&BenchDataset> = suite
            .iter()
            .filter(|d| {
                spec.datasets.is_empty() || spec.datasets.iter().any(|f| d.name.contains(f))
            })
            .collect();
        if selected.is_empty() {
            return Err(format!(
                "dataset filter {:?} matches nothing in the suite ({})",
                spec.datasets,
                suite.iter().map(|d| d.name).collect::<Vec<_>>().join(", ")
            ));
        }
        let io_err = |e: std::io::Error| format!("cannot write sweep CSV: {e}");
        if write_header {
            writeln!(out, "{}", csv_line(&Self::csv_header())).map_err(io_err)?;
        }
        let mut records = Vec::new();
        for dataset in &selected {
            for method in &spec.methods {
                for &seed in &seeds {
                    for &threads in &thread_budgets {
                        for repeat in 0..spec.repeats {
                            let cell = (
                                dataset.name.to_string(),
                                repeat,
                                method.method_name().to_string(),
                                seed,
                                threads,
                            );
                            if skip.contains(&cell) {
                                continue;
                            }
                            let mut config = method.clone();
                            if let Some(dimension) = spec.dimension {
                                config.set_dimension(dimension);
                            }
                            config.set_seed(seed);
                            let outcome = config.build().and_then(|embedder| {
                                let ctx = EmbedContext::new().with_seed(seed).with_threads(threads);
                                embedder.embed(&dataset.graph, &ctx)
                            });
                            let record = match outcome {
                                Ok(output) => {
                                    let metadata = output.metadata().clone();
                                    let mut cells =
                                        vec![dataset.name.to_string(), repeat.to_string()];
                                    cells.extend(metadata.csv_row());
                                    cells.push("ok".into());
                                    writeln!(out, "{}", csv_line(&cells)).map_err(io_err)?;
                                    SweepRecord {
                                        dataset: dataset.name.to_string(),
                                        repeat,
                                        method: config.method_name().to_string(),
                                        metadata: Some(metadata),
                                        error: None,
                                    }
                                }
                                Err(err) => {
                                    // The stream is read line-by-line, so
                                    // keep every record on one physical line
                                    // even if an error Display ever grows a
                                    // line break.
                                    let message = err.to_string().replace(['\n', '\r'], " ");
                                    let cells = vec![
                                        dataset.name.to_string(),
                                        repeat.to_string(),
                                        config.method_name().to_string(),
                                        config.to_json().unwrap_or_default(),
                                        seed.to_string(),
                                        threads.to_string(),
                                        String::new(),
                                        String::new(),
                                        format!("err:{message}"),
                                    ];
                                    writeln!(out, "{}", csv_line(&cells)).map_err(io_err)?;
                                    SweepRecord {
                                        dataset: dataset.name.to_string(),
                                        repeat,
                                        method: config.method_name().to_string(),
                                        metadata: None,
                                        error: Some(message),
                                    }
                                }
                            };
                            out.flush().map_err(io_err)?;
                            records.push(record);
                        }
                    }
                }
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> &'static str {
        r#"{
            "name": "unit",
            "scale": "tiny",
            "seeds": [3, 4],
            "threads": [1, 2],
            "repeats": 2,
            "dimension": 8,
            "methods": [{"method": "NRP"}, {"method": "ApproxPPR"}]
        }"#
    }

    #[test]
    fn json_spec_parses_every_field() {
        let spec = SweepSpec::from_json(minimal_json()).unwrap();
        assert_eq!(spec.name.as_deref(), Some("unit"));
        assert_eq!(spec.scale, Some(Scale::Tiny));
        assert_eq!(spec.seeds, vec![3, 4]);
        assert_eq!(spec.threads, vec![1, 2]);
        assert_eq!(spec.repeats, 2);
        assert_eq!(spec.dimension, Some(8));
        assert_eq!(spec.methods.len(), 2);
        assert_eq!(spec.methods[0].method_name(), "NRP");
    }

    #[test]
    fn toml_spec_matches_the_json_form() {
        let toml = "name = \"unit\"\nscale = \"tiny\"\nseeds = [3, 4]\n\
                    threads = [1, 2]\nrepeats = 2\ndimension = 8\n\
                    [[methods]]\nmethod = \"NRP\"\n\
                    [[methods]]\nmethod = \"ApproxPPR\"\n";
        assert_eq!(
            SweepSpec::from_toml(toml).unwrap(),
            SweepSpec::from_json(minimal_json()).unwrap()
        );
    }

    #[test]
    fn spec_round_trips_through_pretty_json() {
        let spec = SweepSpec::from_json(minimal_json()).unwrap();
        let rendered = spec.to_json_pretty();
        assert_eq!(SweepSpec::from_json(&rendered).unwrap(), spec);
    }

    #[test]
    fn bad_specs_are_rejected_with_field_names() {
        let err = SweepSpec::from_json(r#"{"methods": []}"#).unwrap_err();
        assert!(err.contains("methods"), "{err}");
        let err = SweepSpec::from_json(r#"{"mehtods": [{"method": "NRP"}]}"#).unwrap_err();
        assert!(err.contains("mehtods"), "{err}");
        let err = SweepSpec::from_json(r#"{"scale": "galactic", "methods": [{"method": "NRP"}]}"#)
            .unwrap_err();
        assert!(err.contains("galactic"), "{err}");
        let err =
            SweepSpec::from_json(r#"{"repeats": 0, "methods": [{"method": "NRP"}]}"#).unwrap_err();
        assert!(err.contains("repeats"), "{err}");
        let err = SweepSpec::from_json(r#"{"methods": [{"method": "NRP", "dimention": 4}]}"#)
            .unwrap_err();
        assert!(
            err.contains("methods[0]") && err.contains("dimention"),
            "{err}"
        );
        assert!(SweepSpec::from_json("not json").is_err());
    }

    #[test]
    fn runner_header_extends_run_metadata() {
        let header = SweepRunner::csv_header();
        assert_eq!(header[0], "dataset");
        assert_eq!(header[1], "repeat");
        assert_eq!(&header[2..header.len() - 1], RunMetadata::csv_header());
        assert_eq!(*header.last().unwrap(), "status");
    }

    fn resumable_spec() -> SweepSpec {
        SweepSpec::from_json(
            r#"{
                "scale": "tiny",
                "datasets": ["sbm-directed"],
                "seeds": [3],
                "threads": [1],
                "repeats": 2,
                "dimension": 8,
                "methods": [{"method": "ApproxPPR"}, {"method": "NRP"}]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn resume_of_half_written_sweep_runs_only_missing_cells() {
        let runner = SweepRunner::new(resumable_spec());
        let defaults = HarnessArgs::default();

        // Reference run: the full 4-cell grid (2 methods × 2 repeats).
        let mut full = Vec::new();
        let records = runner.run(&defaults, &mut full).unwrap();
        assert_eq!(records.len(), 4);
        let full_text = String::from_utf8(full).unwrap();
        assert_eq!(SweepRunner::completed_cells(&full_text).len(), 4);

        // Simulate a sweep killed mid-write: header, one complete record,
        // and a second record truncated halfway through the line.
        let lines: Vec<&str> = full_text.lines().collect();
        let half_written = format!(
            "{}\n{}\n{}",
            lines[0],
            lines[1],
            &lines[2][..lines[2].len() / 2]
        );
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("sweep.csv");
        std::fs::write(&path, &half_written).unwrap();

        // The resume must re-run everything but the one complete cell.
        let resumed = runner.run_resumable(&defaults, &path).unwrap();
        assert_eq!(resumed.len(), 3, "one cell was already complete");
        let finished = std::fs::read_to_string(&path).unwrap();
        assert!(finished.starts_with(&half_written), "resume appends");
        assert_eq!(
            SweepRunner::completed_cells(&finished).len(),
            4,
            "all cells complete after the resume"
        );

        // Resuming a finished sweep is a no-op.
        let again = runner.run_resumable(&defaults, &path).unwrap();
        assert!(again.is_empty());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), finished);
    }

    #[test]
    fn completed_cells_ignores_errors_and_junk() {
        let header = csv_line(&SweepRunner::csv_header());
        let text = format!(
            "{header}\n\
             sbm-directed,0,NRP,cfg,3,1,,1.5,ok\n\
             sbm-directed,1,NRP,cfg,3,1,,,err:boom\n\
             not,a,valid,row\n\
             sbm-directed,0,NRP,cfg,notanumber,1,,1.5,ok\n"
        );
        let cells = SweepRunner::completed_cells(&text);
        assert_eq!(cells.len(), 1);
        assert!(cells.contains(&("sbm-directed".to_string(), 0, "NRP".to_string(), 3, 1)));
    }

    #[test]
    fn dataset_filter_that_matches_nothing_errors() {
        let mut spec = SweepSpec::from_json(minimal_json()).unwrap();
        spec.datasets = vec!["no-such-dataset".into()];
        let mut sink = Vec::new();
        let err = SweepRunner::new(spec)
            .run(&HarnessArgs::default(), &mut sink)
            .unwrap_err();
        assert!(err.contains("no-such-dataset"), "{err}");
    }
}
