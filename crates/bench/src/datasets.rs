//! The synthetic dataset suite standing in for the paper's Table 3 datasets.
//!
//! The paper evaluates on seven real graphs (Wiki, BlogCatalog, Youtube,
//! TWeibo, Orkut, Twitter, Friendster) plus two evolving graphs (VK, Digg).
//! None of them is redistributed here; instead each benchmark runs on a suite
//! of synthetic analogues that covers the same axes — directed vs.
//! undirected, labelled vs. unlabelled, community-structured vs. heavy-tailed
//! — at sizes controlled by [`Scale`].

use nrp_graph::generators::evolving::{evolving_sbm, EvolvingGraph, EvolvingSbmParams};
use nrp_graph::generators::{barabasi_albert, planted_labels, stochastic_block_model};
use nrp_graph::{Graph, GraphKind};

/// How large the synthetic graphs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred nodes — used by unit tests of the harness itself.
    Tiny,
    /// ~1–2k nodes — the default for `cargo run` demonstrations.
    Small,
    /// ~10k nodes — minutes per method.
    Medium,
    /// ~50k nodes — approaching the paper's smaller datasets.
    Large,
}

impl Scale {
    /// Multiplier applied to the base community sizes.
    fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Medium => 25,
            Scale::Large => 125,
        }
    }

    /// The serialized name (the value `--scale` and sweep files use).
    pub fn as_str(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }

    /// Parses the name produced by [`Scale::as_str`].
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }
}

/// A named benchmark graph, optionally with node labels.
pub struct BenchDataset {
    /// Short dataset name used in the printed tables (mirrors the paper's
    /// dataset roles, e.g. `wiki-like` is the small directed labelled graph).
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
    /// Node labels, if the dataset participates in node classification.
    pub labels: Option<Vec<Vec<u32>>>,
}

/// Builds the full suite for a scale: two labelled SBM graphs (directed and
/// undirected, standing in for Wiki/TWeibo and BlogCatalog/Youtube) and one
/// unlabelled heavy-tailed Barabási–Albert graph (standing in for the social
/// networks whose degree skew drives the reweighting benefit).
pub fn suite(scale: Scale, seed: u64) -> Vec<BenchDataset> {
    let f = scale.factor();
    let block = 60 * f;
    let (wiki_like, wiki_comm) = stochastic_block_model(
        &[block, block, block],
        scaled_p(0.2, block),
        scaled_p(0.01, block),
        GraphKind::Directed,
        seed,
    )
    .expect("valid SBM parameters");
    let wiki_labels = planted_labels(&wiki_comm, 3, 0.05, 0.1, seed ^ 1);

    let (blog_like, blog_comm) = stochastic_block_model(
        &[block, block, block, block],
        scaled_p(0.15, block),
        scaled_p(0.008, block),
        GraphKind::Undirected,
        seed ^ 2,
    )
    .expect("valid SBM parameters");
    let blog_labels = planted_labels(&blog_comm, 4, 0.05, 0.2, seed ^ 3);

    let ba = barabasi_albert(3 * block, 6, GraphKind::Undirected, seed ^ 4)
        .expect("valid BA parameters");

    vec![
        BenchDataset {
            name: "sbm-directed (wiki-like)",
            graph: wiki_like,
            labels: Some(wiki_labels),
        },
        BenchDataset {
            name: "sbm-undirected (blog-like)",
            graph: blog_like,
            labels: Some(blog_labels),
        },
        BenchDataset {
            name: "ba-powerlaw (social-like)",
            graph: ba,
            labels: None,
        },
    ]
}

/// Keeps the expected within-community degree roughly constant across scales
/// so larger graphs do not become proportionally denser.
fn scaled_p(base: f64, block: usize) -> f64 {
    (base * 60.0 / block as f64).min(1.0)
}

/// The evolving-graph instance used by the Fig. 9 harness (VK/Digg stand-in).
pub fn evolving_dataset(scale: Scale, seed: u64) -> EvolvingGraph {
    let f = scale.factor();
    let block = 80 * f;
    evolving_sbm(&EvolvingSbmParams {
        block_sizes: vec![block, block, block],
        p_in_old: scaled_p(0.05, block),
        p_out_old: scaled_p(0.003, block),
        p_in_new: scaled_p(0.02, block),
        p_out_new: scaled_p(0.001, block),
        kind: GraphKind::Directed,
        seed,
    })
    .expect("valid evolving SBM parameters")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_names_round_trip() {
        for scale in [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large] {
            assert_eq!(Scale::parse(scale.as_str()), Some(scale));
        }
        assert_eq!(Scale::parse("galactic"), None);
    }

    #[test]
    fn tiny_suite_has_three_datasets() {
        let suite = suite(Scale::Tiny, 1);
        assert_eq!(suite.len(), 3);
        assert!(suite.iter().any(|d| d.graph.kind().is_directed()));
        assert!(suite.iter().any(|d| !d.graph.kind().is_directed()));
        assert!(suite.iter().filter(|d| d.labels.is_some()).count() >= 2);
    }

    #[test]
    fn scales_are_monotone_in_size() {
        let tiny = suite(Scale::Tiny, 1);
        let small = suite(Scale::Small, 1);
        for (t, s) in tiny.iter().zip(&small) {
            assert!(s.graph.num_nodes() > t.graph.num_nodes());
        }
    }

    #[test]
    fn density_stays_bounded_across_scales() {
        let tiny = &suite(Scale::Tiny, 1)[0];
        let small = &suite(Scale::Small, 1)[0];
        let mean_degree = |g: &Graph| g.num_arcs() as f64 / g.num_nodes() as f64;
        let ratio = mean_degree(&small.graph) / mean_degree(&tiny.graph);
        assert!(
            ratio < 2.5,
            "mean degree should not blow up with scale (ratio {ratio})"
        );
    }

    #[test]
    fn labels_align_with_nodes() {
        for d in suite(Scale::Tiny, 3) {
            if let Some(labels) = &d.labels {
                assert_eq!(labels.len(), d.graph.num_nodes(), "{}", d.name);
            }
        }
    }

    #[test]
    fn evolving_dataset_has_new_edges() {
        let inst = evolving_dataset(Scale::Tiny, 5);
        assert!(!inst.new_edges.is_empty());
        assert!(inst.old_graph.num_edges() > 0);
    }
}
