//! End-to-end tests of the config-file-driven sweep subsystem: JSON and TOML
//! specs loaded from disk drive the `SweepRunner` over a tiny graph suite,
//! and the emitted CSV (including the per-stage `RunMetadata` cells) parses
//! back through `report::parse_csv_record`.

use std::path::Path;

use nrp_bench::report::parse_csv_record;
use nrp_bench::{methods, HarnessArgs, Scale, SweepRunner, SweepSpec};
use nrp_core::MethodConfig;

fn tiny_defaults() -> HarnessArgs {
    HarnessArgs {
        scale: Scale::Tiny,
        dimension: 8,
        seed: 7,
        threads: 1,
        config: None,
        out: None,
    }
}

const SWEEP_JSON: &str = r#"{
    "name": "e2e",
    "scale": "tiny",
    "dimension": 8,
    "seeds": [7, 8],
    "repeats": 1,
    "threads": [1],
    "datasets": ["sbm-directed"],
    "methods": [
        {"method": "NRP", "num_hops": 5, "reweight_epochs": 2},
        {"method": "ApproxPPR", "num_hops": 5},
        {"method": "RandNE"}
    ]
}"#;

const SWEEP_TOML: &str = "name = \"e2e\"\nscale = \"tiny\"\ndimension = 8\n\
    seeds = [7, 8]\nrepeats = 1\nthreads = [1]\ndatasets = [\"sbm-directed\"]\n\
    [[methods]]\nmethod = \"NRP\"\nnum_hops = 5\nreweight_epochs = 2\n\
    [[methods]]\nmethod = \"ApproxPPR\"\nnum_hops = 5\n\
    [[methods]]\nmethod = \"RandNE\"\n";

/// Runs a spec and returns the parsed CSV lines (header first).
fn run_to_rows(spec: SweepSpec) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let records = SweepRunner::new(spec)
        .run(&tiny_defaults(), &mut out)
        .expect("sweep runs");
    assert!(!records.is_empty());
    let text = String::from_utf8(out).expect("CSV is UTF-8");
    text.lines()
        .map(|line| parse_csv_record(line).expect("every CSV line parses"))
        .collect()
}

#[test]
fn json_sweep_emits_parseable_csv_with_expected_grid() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("sweep.json");
    std::fs::write(&path, SWEEP_JSON).unwrap();
    let spec = SweepSpec::from_path(&path).expect("JSON spec loads");

    let rows = run_to_rows(spec);
    // Header + (1 dataset × 3 methods × 2 seeds × 1 thread budget × 1 repeat).
    assert_eq!(rows.len(), 1 + 6);
    let header = &rows[0];
    let expected: Vec<String> = SweepRunner::csv_header()
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(header, &expected);
    for row in &rows[1..] {
        assert_eq!(row.len(), header.len(), "row {row:?} is ragged");
        assert_eq!(row[0], "sbm-directed (wiki-like)");
        assert_eq!(*row.last().unwrap(), "ok");
        // The config cell contains commas and quotes, so surviving the
        // round trip proves the RFC-4180 escaping: it must parse back into
        // a MethodConfig whose name and seed match the row's columns.
        let config = MethodConfig::from_json(&row[3]).expect("config cell is valid JSON");
        assert_eq!(config.method_name(), row[2]);
        assert_eq!(config.seed().to_string(), row[4]);
        assert_eq!(config.dimension(), 8);
        // Per-stage wall clock: `name:secs@threads` entries.
        assert!(!row[6].is_empty(), "stages cell empty in {row:?}");
        for stage in row[6].split(';') {
            let (name, rest) = stage.split_once(':').expect("stage has a name");
            assert!(!name.is_empty());
            let (secs, threads) = rest.split_once('@').expect("stage has a thread count");
            assert!(secs.parse::<f64>().unwrap() >= 0.0);
            assert!(threads.parse::<usize>().unwrap() >= 1);
        }
        assert!(row[7].parse::<f64>().unwrap() >= 0.0);
    }
    // Both seeds appear for every method.
    let nrp_seeds: Vec<&str> = rows[1..]
        .iter()
        .filter(|r| r[2] == "NRP")
        .map(|r| r[4].as_str())
        .collect();
    assert_eq!(nrp_seeds, ["7", "8"]);
}

#[test]
fn toml_sweep_matches_the_json_sweep() {
    let dir = tempfile::tempdir().unwrap();
    let json_path = dir.path().join("sweep.json");
    let toml_path = dir.path().join("sweep.toml");
    std::fs::write(&json_path, SWEEP_JSON).unwrap();
    std::fs::write(&toml_path, SWEEP_TOML).unwrap();
    let json_spec = SweepSpec::from_path(&json_path).unwrap();
    let toml_spec = SweepSpec::from_path(&toml_path).unwrap();
    assert_eq!(json_spec, toml_spec);
    // Same spec → same grid; embeddings are deterministic, so the emitted
    // grids agree cell-for-cell outside the wall-clock columns.
    let json_rows = run_to_rows(json_spec);
    let toml_rows = run_to_rows(toml_spec);
    assert_eq!(json_rows.len(), toml_rows.len());
    for (a, b) in json_rows.iter().zip(&toml_rows) {
        assert_eq!(a[..5], b[..5]);
        assert_eq!(a.last(), b.last());
    }
}

#[test]
fn unsupported_extension_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("sweep.yaml");
    std::fs::write(&path, SWEEP_JSON).unwrap();
    let err = SweepSpec::from_path(&path).unwrap_err();
    assert!(err.contains(".json") && err.contains(".toml"), "{err}");
}

#[test]
fn failed_runs_keep_the_row_width_and_carry_the_error() {
    // dimension 7 is rejected by the ApproxPPR builder, so every ApproxPPR
    // cell fails while NRP... dimension must be even for NRP too.  Use a
    // spec whose second method always fails to build.
    let spec = SweepSpec::from_json(
        r#"{
            "scale": "tiny",
            "datasets": ["ba-powerlaw"],
            "methods": [
                {"method": "RandNE", "dimension": 8},
                {"method": "ApproxPPR", "dimension": 7, "num_hops": 5}
            ]
        }"#,
    )
    .unwrap();
    let mut out = Vec::new();
    let records = SweepRunner::new(spec)
        .run(&tiny_defaults(), &mut out)
        .expect("sweep completes despite per-run failures");
    assert_eq!(records.len(), 2);
    assert!(records[0].error.is_none());
    let failure = records[1].error.as_ref().expect("ApproxPPR must fail");
    assert!(failure.contains("even"), "{failure}");
    let text = String::from_utf8(out).unwrap();
    let rows: Vec<Vec<String>> = text.lines().map(|l| parse_csv_record(l).unwrap()).collect();
    let header_len = rows[0].len();
    for row in &rows[1..] {
        assert_eq!(row.len(), header_len, "ragged row {row:?}");
    }
    let err_row = rows.last().unwrap();
    assert!(err_row.last().unwrap().starts_with("err:"), "{err_row:?}");
}

fn repo_config(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../configs")
        .join(name)
}

#[test]
fn checked_in_fig7_config_reproduces_the_hard_coded_roster() {
    for file in ["fig7.json", "fig7.toml"] {
        let spec = SweepSpec::from_path(&repo_config(file)).expect(file);
        assert_eq!(spec.scale, Some(Scale::Small), "{file}");
        // Applying the harness dimension and seed uniformly (what
        // HarnessArgs::roster_configs_at does) must give exactly the roster
        // the bins hard-code, including the walk-budget reductions.
        let applied: Vec<MethodConfig> = spec
            .methods
            .iter()
            .cloned()
            .map(|mut c| {
                c.set_dimension(32);
                c.set_seed(7);
                c
            })
            .collect();
        assert_eq!(applied, methods::roster_configs(32, 7), "{file}");
    }
    // The two flavours describe the same sweep.
    assert_eq!(
        SweepSpec::from_path(&repo_config("fig7.json")).unwrap(),
        SweepSpec::from_path(&repo_config("fig7.toml")).unwrap()
    );
}

#[test]
fn checked_in_fig10_and_smoke_configs_load() {
    let fig10 = SweepSpec::from_path(&repo_config("fig10.json")).unwrap();
    assert_eq!(fig10.threads, vec![1, 2, 4, 8]);
    assert_eq!(fig10.methods.len(), 1);
    assert_eq!(fig10.methods[0].method_name(), "NRP");

    let smoke = SweepSpec::from_path(&repo_config("smoke.json")).unwrap();
    assert_eq!(smoke.scale, Some(Scale::Tiny));
    assert!(smoke.methods.len() >= 3);
}

#[test]
fn harness_args_resolve_sweep_level_fields_from_the_config() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("sweep.json");
    std::fs::write(&path, SWEEP_JSON).unwrap();
    let path_str = path.to_str().unwrap().to_string();

    // Flags absent: spec fields fill in.
    let args = HarnessArgs::parse(&["--config".to_string(), path_str.clone()])
        .unwrap()
        .unwrap();
    assert_eq!(args.scale, Scale::Tiny);
    assert_eq!(args.dimension, 8);
    assert_eq!(args.seed, 7, "first spec seed");
    // The roster comes from the spec, dimension/seed applied uniformly.
    let configs = args.roster_configs_at(16);
    assert_eq!(configs.len(), 3);
    assert_eq!(configs[0].method_name(), "NRP");
    assert!(configs.iter().all(|c| c.dimension() == 16));

    // Explicit flags beat the spec — both in the resolved scalars and in
    // the stored spec itself, so the SweepRunner (which iterates the spec's
    // seed/thread lists) honours the same precedence.
    let args = HarnessArgs::parse(&[
        "--config".to_string(),
        path_str,
        "--scale".to_string(),
        "small".to_string(),
        "--dim".to_string(),
        "64".to_string(),
        "--seed".to_string(),
        "99".to_string(),
    ])
    .unwrap()
    .unwrap();
    assert_eq!(args.scale, Scale::Small);
    assert_eq!(args.dimension, 64);
    assert_eq!(args.seed, 99);
    let spec = args.config.as_ref().unwrap();
    assert_eq!(spec.scale, Some(Scale::Small));
    assert_eq!(spec.dimension, Some(64));
    assert_eq!(spec.seeds, vec![99], "--seed replaces the spec's seed list");
    assert_eq!(
        spec.threads,
        vec![1],
        "unflagged fields keep the spec values"
    );
}
