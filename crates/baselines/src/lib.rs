//! # nrp-baselines
//!
//! Re-implementations of the competitor families the paper evaluates NRP
//! against (Section 5.1).  One faithful representative is provided per
//! family; all of them implement [`nrp_core::Embedder`], so they plug into
//! the same evaluation and benchmark pipelines as NRP:
//!
//! | Family | Methods here |
//! |---|---|
//! | Factorization-based | [`arope::Arope`], [`randne::RandNe`], [`spectral::SpectralEmbedding`] |
//! | PPR-factorization | [`strap::Strap`] (plus `ApproxPpr` in `nrp-core`) |
//! | Random-walk learning | [`deepwalk::DeepWalk`], [`node2vec::Node2Vec`], [`line::Line`] |
//! | PPR-based walk learning | [`verse::Verse`], [`app::App`] |
//!
//! The neural-network family (DNGR, GAE, GraphGAN, …) is intentionally not
//! reproduced: the paper's own evaluation shows those methods do not scale to
//! the graphs of interest, and they would require a deep-learning substrate
//! orthogonal to this reproduction (see DESIGN.md).
//!
//! Shared machinery lives in [`alias`] (O(1) weighted sampling), [`walks`]
//! (uniform and node2vec-biased random walks, α-decay PPR walks) and
//! [`sgns`] (skip-gram with negative sampling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod app;
pub mod arope;
pub mod deepwalk;
pub mod line;
pub mod node2vec;
pub mod randne;
pub mod sgns;
pub mod spectral;
pub mod strap;
pub mod verse;
pub mod walks;

pub use app::App;
pub use arope::Arope;
pub use deepwalk::DeepWalk;
pub use line::Line;
pub use node2vec::Node2Vec;
pub use randne::RandNe;
pub use spectral::SpectralEmbedding;
pub use strap::Strap;
pub use verse::Verse;

use nrp_core::Embedder;

/// Returns one boxed instance of every baseline with mostly-default
/// parameters at the given embedding dimension and seed — convenient for the
/// benchmark harnesses that sweep "all methods".
pub fn all_baselines(dimension: usize, seed: u64) -> Vec<Box<dyn Embedder>> {
    vec![
        Box::new(Arope::new(arope::AropeParams { dimension, seed, ..Default::default() })),
        Box::new(RandNe::new(randne::RandNeParams { dimension, seed, ..Default::default() })),
        Box::new(SpectralEmbedding::new(spectral::SpectralParams { dimension, seed, ..Default::default() })),
        Box::new(Strap::new(strap::StrapParams { dimension, seed, ..Default::default() })),
        Box::new(DeepWalk::new(deepwalk::DeepWalkParams { dimension, seed, ..Default::default() })),
        Box::new(Node2Vec::new(node2vec::Node2VecParams { dimension, seed, ..Default::default() })),
        Box::new(Line::new(line::LineParams { dimension, seed, ..Default::default() })),
        Box::new(Verse::new(verse::VerseParams { dimension, seed, ..Default::default() })),
        Box::new(App::new(app::AppParams { dimension, seed, ..Default::default() })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    #[test]
    fn all_baselines_produce_finite_embeddings() {
        let (g, _) = stochastic_block_model(&[20, 20], 0.25, 0.03, GraphKind::Undirected, 1).unwrap();
        for embedder in all_baselines(8, 7) {
            let e = embedder.embed(&g).expect(embedder.name());
            assert_eq!(e.num_nodes(), 40, "{}", embedder.name());
            assert!(e.is_finite(), "{} produced non-finite values", embedder.name());
        }
    }

    #[test]
    fn baseline_names_are_unique() {
        let names: Vec<&str> = all_baselines(8, 0).iter().map(|b| b.name()).collect();
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
