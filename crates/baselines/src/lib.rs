//! # nrp-baselines
//!
//! Re-implementations of the competitor families the paper evaluates NRP
//! against (Section 5.1).  One faithful representative is provided per
//! family; all of them implement [`nrp_core::Embedder`], so they plug into
//! the same evaluation and benchmark pipelines as NRP:
//!
//! | Family | Methods here |
//! |---|---|
//! | Factorization-based | [`arope::Arope`], [`randne::RandNe`], [`spectral::SpectralEmbedding`] |
//! | PPR-factorization | [`strap::Strap`] (plus `ApproxPpr` in `nrp-core`) |
//! | Random-walk learning | [`deepwalk::DeepWalk`], [`node2vec::Node2Vec`], [`line::Line`] |
//! | PPR-based walk learning | [`verse::Verse`], [`app::App`] |
//!
//! The neural-network family (DNGR, GAE, GraphGAN, …) is intentionally not
//! reproduced: the paper's own evaluation shows those methods do not scale to
//! the graphs of interest, and they would require a deep-learning substrate
//! orthogonal to this reproduction (see DESIGN.md).
//!
//! Shared machinery lives in [`alias`] (O(1) weighted sampling), [`walks`]
//! (uniform and node2vec-biased random walks, α-decay PPR walks) and
//! [`sgns`] (skip-gram with negative sampling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod app;
pub mod arope;
pub mod deepwalk;
pub mod line;
pub mod node2vec;
pub mod randne;
mod ritz;
pub mod sgns;
pub mod spectral;
pub mod strap;
pub mod verse;
pub mod walks;

pub use app::App;
pub use arope::Arope;
pub use deepwalk::DeepWalk;
pub use line::Line;
pub use node2vec::Node2Vec;
pub use randne::RandNe;
pub use spectral::SpectralEmbedding;
pub use strap::Strap;
pub use verse::Verse;

use nrp_core::{register_method, Embedder, MethodConfig, NrpError, Result};

/// Returns one boxed instance of every baseline with mostly-default
/// parameters at the given embedding dimension and seed — convenient for the
/// benchmark harnesses that sweep "all methods".
pub fn all_baselines(dimension: usize, seed: u64) -> Vec<Box<dyn Embedder>> {
    vec![
        Box::new(Arope::new(arope::AropeParams {
            dimension,
            seed,
            ..Default::default()
        })),
        Box::new(RandNe::new(randne::RandNeParams {
            dimension,
            seed,
            ..Default::default()
        })),
        Box::new(SpectralEmbedding::new(spectral::SpectralParams {
            dimension,
            seed,
            ..Default::default()
        })),
        Box::new(Strap::new(strap::StrapParams {
            dimension,
            seed,
            ..Default::default()
        })),
        Box::new(DeepWalk::new(deepwalk::DeepWalkParams {
            dimension,
            seed,
            ..Default::default()
        })),
        Box::new(Node2Vec::new(node2vec::Node2VecParams {
            dimension,
            seed,
            ..Default::default()
        })),
        Box::new(Line::new(line::LineParams {
            dimension,
            seed,
            ..Default::default()
        })),
        Box::new(Verse::new(verse::VerseParams {
            dimension,
            seed,
            ..Default::default()
        })),
        Box::new(App::new(app::AppParams {
            dimension,
            seed,
            ..Default::default()
        })),
    ]
}

/// Adds all nine baselines to the `nrp-core` method registry, so that
/// [`MethodConfig::build`] can resolve them (e.g. from a JSON experiment
/// description).  Idempotent and cheap; call it once at startup — the
/// umbrella crate's `nrp::init()` and the benchmark roster do this for you.
pub fn register_baselines() {
    register_method("STRAP", build_strap);
    register_method("AROPE", build_arope);
    register_method("RandNE", build_randne);
    register_method("Spectral", build_spectral);
    register_method("DeepWalk", build_deepwalk);
    register_method("node2vec", build_node2vec);
    register_method("LINE", build_line);
    register_method("VERSE", build_verse);
    register_method("APP", build_app);
}

fn mismatch(expected: &str, got: &MethodConfig) -> NrpError {
    NrpError::InvalidParameter(format!(
        "{expected} builder received a `{}` config",
        got.method_name()
    ))
}

fn build_strap(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::Strap {
            dimension,
            alpha,
            delta,
            iterations,
            dangling,
            seed,
        } => Ok(Box::new(Strap::new(strap::StrapParams {
            dimension: *dimension,
            alpha: *alpha,
            delta: *delta,
            iterations: *iterations,
            dangling: *dangling,
            seed: *seed,
        }))),
        other => Err(mismatch("STRAP", other)),
    }
}

fn build_arope(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::Arope {
            dimension,
            order_weights,
            oversample,
            iterations,
            seed,
        } => Ok(Box::new(Arope::new(arope::AropeParams {
            dimension: *dimension,
            order_weights: order_weights.clone(),
            oversample: *oversample,
            iterations: *iterations,
            seed: *seed,
        }))),
        other => Err(mismatch("AROPE", other)),
    }
}

fn build_randne(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::RandNe {
            dimension,
            order_weights,
            seed,
        } => Ok(Box::new(RandNe::new(randne::RandNeParams {
            dimension: *dimension,
            order_weights: order_weights.clone(),
            seed: *seed,
        }))),
        other => Err(mismatch("RandNE", other)),
    }
}

fn build_spectral(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::Spectral {
            dimension,
            oversample,
            iterations,
            seed,
        } => Ok(Box::new(SpectralEmbedding::new(spectral::SpectralParams {
            dimension: *dimension,
            oversample: *oversample,
            iterations: *iterations,
            seed: *seed,
        }))),
        other => Err(mismatch("Spectral", other)),
    }
}

fn build_deepwalk(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::DeepWalk {
            dimension,
            walks_per_node,
            walk_length,
            window,
            epochs,
            negatives,
            learning_rate,
            seed,
        } => Ok(Box::new(DeepWalk::new(deepwalk::DeepWalkParams {
            dimension: *dimension,
            walks_per_node: *walks_per_node,
            walk_length: *walk_length,
            window: *window,
            epochs: *epochs,
            negatives: *negatives,
            learning_rate: *learning_rate,
            seed: *seed,
        }))),
        other => Err(mismatch("DeepWalk", other)),
    }
}

fn build_node2vec(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::Node2Vec {
            dimension,
            p,
            q,
            walks_per_node,
            walk_length,
            window,
            epochs,
            negatives,
            learning_rate,
            seed,
        } => Ok(Box::new(Node2Vec::new(node2vec::Node2VecParams {
            dimension: *dimension,
            p: *p,
            q: *q,
            walks_per_node: *walks_per_node,
            walk_length: *walk_length,
            window: *window,
            epochs: *epochs,
            negatives: *negatives,
            learning_rate: *learning_rate,
            seed: *seed,
        }))),
        other => Err(mismatch("node2vec", other)),
    }
}

fn build_line(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::Line {
            dimension,
            samples,
            negatives,
            learning_rate,
            seed,
        } => Ok(Box::new(Line::new(line::LineParams {
            dimension: *dimension,
            samples: *samples,
            negatives: *negatives,
            learning_rate: *learning_rate,
            seed: *seed,
        }))),
        other => Err(mismatch("LINE", other)),
    }
}

fn build_verse(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::Verse {
            dimension,
            alpha,
            samples_per_node,
            epochs,
            negatives,
            learning_rate,
            seed,
        } => Ok(Box::new(Verse::new(verse::VerseParams {
            dimension: *dimension,
            alpha: *alpha,
            samples_per_node: *samples_per_node,
            epochs: *epochs,
            negatives: *negatives,
            learning_rate: *learning_rate,
            seed: *seed,
        }))),
        other => Err(mismatch("VERSE", other)),
    }
}

fn build_app(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::App {
            dimension,
            alpha,
            samples_per_node,
            epochs,
            negatives,
            learning_rate,
            seed,
        } => Ok(Box::new(App::new(app::AppParams {
            dimension: *dimension,
            alpha: *alpha,
            samples_per_node: *samples_per_node,
            epochs: *epochs,
            negatives: *negatives,
            learning_rate: *learning_rate,
            seed: *seed,
        }))),
        other => Err(mismatch("APP", other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    #[test]
    fn all_baselines_produce_finite_embeddings() {
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.25, 0.03, GraphKind::Undirected, 1).unwrap();
        for embedder in all_baselines(8, 7) {
            let e = embedder
                .embed_default(&g)
                .unwrap_or_else(|_| panic!("{}", embedder.name()));
            assert_eq!(e.num_nodes(), 40, "{}", embedder.name());
            assert!(
                e.is_finite(),
                "{} produced non-finite values",
                embedder.name()
            );
        }
    }

    #[test]
    fn baseline_names_are_unique() {
        let names: Vec<&str> = all_baselines(8, 0).iter().map(|b| b.name()).collect();
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn registry_builds_every_baseline_from_its_config() {
        register_baselines();
        register_baselines(); // idempotent
        for name in [
            "STRAP", "AROPE", "RandNE", "Spectral", "DeepWalk", "node2vec", "LINE", "VERSE", "APP",
        ] {
            let config = MethodConfig::default_for(name).expect("known method");
            let embedder = config.build().expect(name);
            assert_eq!(embedder.name(), name);
            // The embedder echoes exactly the config it was built from, which
            // also pins the `MethodConfig` paper defaults to the per-method
            // `*Params::default()` values.
            assert_eq!(embedder.config(), config, "{name} config echo");
        }
    }

    /// Replaces every field of a serialized config with a non-default value
    /// that stays inside each parameter's valid range: ints `+2` (keeps
    /// dimensions even), floats halved (keeps `(0,1)` ranges inside `(0,1)`),
    /// bools flipped, the SVD-method string toggled, arrays halved per
    /// element.
    fn perturb(value: &serde_json::Value) -> serde_json::Value {
        use serde_json::{Number, Value};
        match value {
            Value::Number(Number::PosInt(v)) => Value::Number(Number::PosInt(v + 2)),
            Value::Number(Number::Float(v)) => Value::Number(Number::Float(v / 2.0)),
            Value::Bool(b) => Value::Bool(!b),
            Value::String(s) if s == "block-krylov" => Value::String("subspace-iteration".into()),
            Value::String(s) if s == "subspace-iteration" => Value::String("block-krylov".into()),
            Value::Array(items) => Value::Array(items.iter().map(perturb).collect()),
            other => other.clone(),
        }
    }

    #[test]
    fn builders_copy_every_field() {
        // Drift guard for the hand-written build_* functions (here and in
        // nrp-core): build each method from a config where EVERY field is
        // non-default and check the embedder echoes it exactly — a builder
        // that drops or miscopies a field fails this for that field.
        register_baselines();
        for name in MethodConfig::method_names() {
            let default = MethodConfig::default_for(name).expect("known method");
            let serde_json::Value::Object(object) = serde_json::to_value(&default) else {
                panic!("configs serialize to objects");
            };
            let mut perturbed_object = serde_json::Map::new();
            for (key, value) in object.iter() {
                let new_value = if key == "method" {
                    value.clone()
                } else {
                    perturb(value)
                };
                perturbed_object.insert(key, new_value);
            }
            let perturbed: MethodConfig =
                serde_json::from_value(&serde_json::Value::Object(perturbed_object)).expect(name);
            assert_ne!(perturbed, default, "{name}: perturbation had no effect");
            let embedder = perturbed.build().expect(name);
            assert_eq!(
                embedder.config(),
                perturbed,
                "{name}: builder dropped a field"
            );
        }
    }

    #[test]
    fn default_configs_match_params_defaults() {
        // Guards against drift between the literals in nrp-core's
        // `MethodConfig` defaults and each baseline's `Default` impl.
        let defaults: Vec<Box<dyn Embedder>> = vec![
            Box::new(Strap::new(strap::StrapParams::default())),
            Box::new(Arope::new(arope::AropeParams::default())),
            Box::new(RandNe::new(randne::RandNeParams::default())),
            Box::new(SpectralEmbedding::new(spectral::SpectralParams::default())),
            Box::new(DeepWalk::new(deepwalk::DeepWalkParams::default())),
            Box::new(Node2Vec::new(node2vec::Node2VecParams::default())),
            Box::new(Line::new(line::LineParams::default())),
            Box::new(Verse::new(verse::VerseParams::default())),
            Box::new(App::new(app::AppParams::default())),
        ];
        for embedder in defaults {
            let expected = MethodConfig::default_for(embedder.name()).expect("known method");
            assert_eq!(embedder.config(), expected, "{}", embedder.name());
        }
    }
}
