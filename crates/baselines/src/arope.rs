//! AROPE (Zhang et al., KDD 2018): arbitrary-order proximity preserved
//! network embedding.
//!
//! AROPE eigen-decomposes the (symmetrized) adjacency matrix once,
//! `A ≈ U Λ Uᵀ`, and then derives embeddings for any polynomial proximity
//! `S = Σ_i w_i A^i` by reweighting the eigenvalues: `f(Λ) = Σ_i w_i Λ^i`,
//! `X = U |f(Λ)|^{1/2}`, `Y = U sign(f(Λ)) |f(Λ)|^{1/2}`, so `X Yᵀ = U f(Λ) Uᵀ ≈ S`.
//! Like the original method it is designed for undirected graphs; on directed
//! inputs the direction is ignored (exactly how the NRP paper evaluates it).

use nrp_core::{
    EmbedContext, EmbedOutput, Embedder, Embedding, MethodConfig, NrpError, Result, StageClock,
};
use nrp_graph::Graph;
use nrp_linalg::eig::symmetric_eigen;
use nrp_linalg::{AdjacencyOperator, LinearOperator, RandomizedSvd, RandomizedSvdMethod};

/// AROPE hyper-parameters.
#[derive(Debug, Clone)]
pub struct AropeParams {
    /// Total per-node budget `k`; forward and backward blocks get `k/2` each.
    pub dimension: usize,
    /// Weights of the proximity polynomial `S = Σ_i w_i A^i` (order = length).
    pub order_weights: Vec<f64>,
    /// Oversampling for the randomized eigen-solver.
    pub oversample: usize,
    /// Power iterations for the randomized eigen-solver.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AropeParams {
    fn default() -> Self {
        Self {
            dimension: 128,
            order_weights: vec![1.0, 0.1, 0.01],
            oversample: 8,
            iterations: 8,
            seed: 0,
        }
    }
}

/// The AROPE embedder.
#[derive(Debug, Clone, Default)]
pub struct Arope {
    params: AropeParams,
}

impl Arope {
    /// Creates an AROPE embedder.
    pub fn new(params: AropeParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &AropeParams {
        &self.params
    }
}

impl Embedder for Arope {
    fn name(&self) -> &'static str {
        "AROPE"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::Arope {
            dimension: p.dimension,
            order_weights: p.order_weights.clone(),
            oversample: p.oversample,
            iterations: p.iterations,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let p = &self.params;
        if p.dimension < 2 {
            return Err(NrpError::InvalidParameter(
                "dimension must be at least 2".into(),
            ));
        }
        if p.order_weights.is_empty() {
            return Err(NrpError::InvalidParameter(
                "order_weights must not be empty".into(),
            ));
        }
        ctx.ensure_active()?;
        let seed = ctx.seed_or(p.seed);
        let threads = ctx.thread_budget();
        let mut clock = StageClock::start();
        let half = (p.dimension / 2).max(1);
        // Symmetrize: work on the undirected version of the graph (AROPE is
        // undirected-only; the NRP paper feeds it the undirected projection).
        let undirected = symmetrize(graph)?;
        clock.lap("symmetrize");
        let op = AdjacencyOperator::new(&undirected);
        // Top eigenpairs of the symmetric adjacency via a randomized range
        // basis followed by a small projected eigenproblem (Rayleigh–Ritz).
        let sketch_rank = (half + p.oversample).min(undirected.num_nodes());
        let svd = RandomizedSvd::new(sketch_rank)
            .oversample(p.oversample)
            .iterations(p.iterations)
            .method(RandomizedSvdMethod::BlockKrylov)
            .seed(seed)
            .exec(ctx.exec())
            .compute(&op)?;
        clock.lap_parallel("eigensolve", threads);
        ctx.ensure_active()?;
        // Rayleigh–Ritz on the orthonormal basis U: T = Uᵀ A U (small), then
        // eigenvectors of T rotated back give signed eigenpairs of A.
        let basis = &svd.u;
        let au = op.apply_with(basis, threads)?;
        let projected = basis.transpose_matmul(&au)?;
        let eig = symmetric_eigen(&projected)?;
        // Select the `half` eigenvalues with the largest |f(λ)| and scale by
        // ±|f(λ)|^(1/2) (shared Ritz machinery with the spectral baseline).
        let f: Vec<f64> = eig
            .values
            .iter()
            .map(|&l| polynomial(&p.order_weights, l))
            .collect();
        let (forward, backward) = crate::ritz::signed_ritz_embedding(basis, &eig, &f, half)?;
        let embedding = Embedding::new(forward, backward, self.name())?;
        clock.lap("reweight_eigenvalues");
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

fn polynomial(weights: &[f64], lambda: f64) -> f64 {
    let mut power = lambda;
    let mut total = 0.0;
    for &w in weights {
        total += w * power;
        power *= lambda;
    }
    total
}

/// Projects a graph onto its undirected version (each arc becomes an edge).
fn symmetrize(graph: &Graph) -> Result<Graph> {
    if !graph.kind().is_directed() {
        return Ok(graph.clone());
    }
    let edges: Vec<(u32, u32)> = graph.arcs().collect();
    Graph::from_edges(graph.num_nodes(), &edges, nrp_graph::GraphKind::Undirected)
        .map_err(NrpError::Graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(seed: u64) -> AropeParams {
        AropeParams {
            dimension: 16,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn reconstructs_first_order_proximity() {
        // With weights = [1] the target proximity is the adjacency matrix itself.
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.3, 0.02, GraphKind::Undirected, 1).unwrap();
        let params = AropeParams {
            dimension: 32,
            order_weights: vec![1.0],
            ..small_params(1)
        };
        let e = Arope::new(params).embed_default(&g).unwrap();
        let mut edge_mean = 0.0;
        let mut non_edge_mean = 0.0;
        let (mut ce, mut cn) = (0, 0);
        for u in 0..40u32 {
            for v in 0..40u32 {
                if u == v {
                    continue;
                }
                if g.has_arc(u, v) {
                    edge_mean += e.score(u, v);
                    ce += 1;
                } else {
                    non_edge_mean += e.score(u, v);
                    cn += 1;
                }
            }
        }
        assert!(edge_mean / ce as f64 > non_edge_mean / cn as f64 + 0.1);
    }

    #[test]
    fn polynomial_evaluation() {
        // weights [2, 3] -> 2λ + 3λ².
        assert!((polynomial(&[2.0, 3.0], 2.0) - 16.0).abs() < 1e-12);
        assert!((polynomial(&[1.0], -2.0) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn handles_directed_input_by_symmetrizing() {
        let (g, _) = stochastic_block_model(&[15, 15], 0.25, 0.03, GraphKind::Directed, 2).unwrap();
        let e = Arope::new(small_params(2)).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 30);
        assert!(e.is_finite());
    }

    #[test]
    fn invalid_params_rejected() {
        let (g, _) =
            stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Undirected, 3).unwrap();
        assert!(Arope::new(AropeParams {
            dimension: 1,
            ..small_params(3)
        })
        .embed_default(&g)
        .is_err());
        assert!(Arope::new(AropeParams {
            order_weights: vec![],
            ..small_params(3)
        })
        .embed_default(&g)
        .is_err());
    }

    #[test]
    fn negative_eigenvalues_are_handled() {
        // A bipartite-ish graph has large negative eigenvalues; embeddings must stay finite
        // and the score X·Yᵀ must still approximate the (signed) proximity.
        let g = nrp_graph::generators::simple::star(20).unwrap();
        let e = Arope::new(AropeParams {
            dimension: 8,
            order_weights: vec![1.0],
            ..small_params(4)
        })
        .embed_default(&g)
        .unwrap();
        assert!(e.is_finite());
        // Star: hub-leaf pairs are edges, leaf-leaf pairs are not.
        assert!(e.score(0, 5) > e.score(3, 5));
    }
}
