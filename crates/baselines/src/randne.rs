//! RandNE (Zhang et al., ICDM 2018): billion-scale network embedding with
//! iterative random projection.
//!
//! A random Gaussian matrix is orthogonalized to form `U₀`; repeated
//! multiplication by the (transition) matrix produces `Uᵢ = P Uᵢ₋₁`, and the
//! final embedding is the weighted sum `Σ_i w_i Uᵢ` — high-order proximity
//! captured without any factorization, trading accuracy for speed (which is
//! exactly how it behaves relative to NRP in the paper's experiments).

use nrp_core::{
    EmbedContext, EmbedOutput, Embedder, Embedding, MethodConfig, NrpError, Result, StageClock,
};
use nrp_graph::Graph;
use nrp_linalg::qr::orthonormalize;
use nrp_linalg::random::gaussian_matrix;
use nrp_linalg::{LinearOperator, TransitionOperator};

/// RandNE hyper-parameters.
#[derive(Debug, Clone)]
pub struct RandNeParams {
    /// Per-node embedding dimension (single vector per node).
    pub dimension: usize,
    /// Weights of the proximity orders `q` (length = highest order + 1,
    /// weight 0 applies to the random base `U₀`).
    pub order_weights: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandNeParams {
    fn default() -> Self {
        Self {
            dimension: 128,
            order_weights: vec![1.0, 1e2, 1e4, 1e5],
            seed: 0,
        }
    }
}

/// The RandNE embedder.
#[derive(Debug, Clone, Default)]
pub struct RandNe {
    params: RandNeParams,
}

impl RandNe {
    /// Creates a RandNE embedder.
    pub fn new(params: RandNeParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &RandNeParams {
        &self.params
    }
}

impl Embedder for RandNe {
    fn name(&self) -> &'static str {
        "RandNE"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::RandNe {
            dimension: p.dimension,
            order_weights: p.order_weights.clone(),
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let p = &self.params;
        if p.dimension == 0 {
            return Err(NrpError::InvalidParameter(
                "dimension must be positive".into(),
            ));
        }
        if p.order_weights.is_empty() {
            return Err(NrpError::InvalidParameter(
                "order_weights must not be empty".into(),
            ));
        }
        ctx.ensure_active()?;
        let seed = ctx.seed_or(p.seed);
        let mut clock = StageClock::start();
        let n = graph.num_nodes();
        let transition = TransitionOperator::new(graph);
        // U0: orthogonalized Gaussian projection.
        let base = gaussian_matrix(n, p.dimension.min(n), seed);
        let mut current = orthonormalize(&base)?;
        clock.lap("projection");
        let threads = ctx.thread_budget();
        let exec = ctx.exec();
        let mut result = current.clone();
        result.scale(p.order_weights[0]);
        for &w in &p.order_weights[1..] {
            ctx.ensure_active()?;
            current = transition.apply_exec(&current, &exec)?;
            result.axpy(w, &current)?;
        }
        clock.lap_parallel("propagation", threads);
        let embedding = Embedding::symmetric(result, self.name());
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(seed: u64) -> RandNeParams {
        RandNeParams {
            dimension: 16,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn produces_finite_embedding() {
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.25, 0.02, GraphKind::Undirected, 1).unwrap();
        let e = RandNe::new(small_params(1)).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 40);
        assert!(e.is_finite());
    }

    #[test]
    fn captures_communities_through_propagation() {
        let (g, community) =
            stochastic_block_model(&[30, 30], 0.3, 0.01, GraphKind::Undirected, 2).unwrap();
        let e = RandNe::new(small_params(2)).embed_default(&g).unwrap();
        // Cosine similarity within communities should exceed across.
        let cos = |u: u32, v: u32| {
            let a = e.forward_vector(u);
            let b = e.forward_vector(v);
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            if na > 0.0 && nb > 0.0 {
                dot / (na * nb)
            } else {
                0.0
            }
        };
        let mut within = 0.0;
        let mut across = 0.0;
        let (mut cw, mut ca) = (0, 0);
        for u in 0..60u32 {
            for v in 0..60u32 {
                if u == v {
                    continue;
                }
                if community[u as usize] == community[v as usize] {
                    within += cos(u, v);
                    cw += 1;
                } else {
                    across += cos(u, v);
                    ca += 1;
                }
            }
        }
        assert!(within / cw as f64 > across / ca as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) =
            stochastic_block_model(&[15, 15], 0.3, 0.02, GraphKind::Undirected, 3).unwrap();
        let a = RandNe::new(small_params(9)).embed_default(&g).unwrap();
        let b = RandNe::new(small_params(9)).embed_default(&g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_params_rejected() {
        let (g, _) =
            stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Undirected, 4).unwrap();
        assert!(RandNe::new(RandNeParams {
            dimension: 0,
            ..small_params(4)
        })
        .embed_default(&g)
        .is_err());
        assert!(RandNe::new(RandNeParams {
            order_weights: vec![],
            ..small_params(4)
        })
        .embed_default(&g)
        .is_err());
    }
}
