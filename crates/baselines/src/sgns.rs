//! Skip-gram with negative sampling (SGNS), the training loop behind
//! DeepWalk, node2vec and (with different pair sources) LINE, VERSE and APP.
//!
//! Center vectors and context vectors are trained with SGD on the standard
//! objective `log σ(c·x) + Σ_neg log σ(-c_neg·x)`; negatives are drawn from
//! the unigram distribution raised to the 3/4 power, as in word2vec.

use nrp_core::{EmbedContext, Result};
use nrp_linalg::DenseMatrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::alias::AliasTable;

/// SGD steps between cooperative cancellation checks in the training loops
/// of SGNS, LINE, VERSE and APP.  A check is one relaxed atomic load against
/// hundreds of floating-point operations per step, so the overhead is far
/// below 1% while cancellation latency stays in the sub-millisecond range.
pub const CANCEL_CHECK_INTERVAL: usize = 1024;

/// Hyper-parameters of the SGNS trainer.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding dimensionality of both the center and context tables.
    pub dimension: usize,
    /// Number of passes over the training pairs.
    pub epochs: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Initial SGD learning rate (linearly decayed to 1/10th).
    pub learning_rate: f64,
    /// RNG seed for initialization and negative sampling.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dimension: 64,
            epochs: 2,
            negatives: 5,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

/// The two lookup tables produced by SGNS training.
#[derive(Debug, Clone)]
pub struct SgnsModel {
    /// Center ("input") vectors, one row per node.
    pub center: DenseMatrix,
    /// Context ("output") vectors, one row per node.
    pub context: DenseMatrix,
}

/// Trains SGNS over `(center, context)` pairs for `num_nodes` nodes.
///
/// `frequency` gives the negative-sampling weight of each node (usually its
/// occurrence count in the walks); if empty, uniform weights are used.
///
/// Cancellation via `ctx` is checked every [`CANCEL_CHECK_INTERVAL`] SGD
/// steps (not just per epoch), so even a single long epoch aborts promptly.
pub fn train_sgns(
    num_nodes: usize,
    pairs: &[(u32, u32)],
    frequency: &[f64],
    config: &SgnsConfig,
    ctx: &EmbedContext,
) -> Result<SgnsModel> {
    let dim = config.dimension.max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let scale = 0.5 / dim as f64;
    let mut center = DenseMatrix::from_fn(num_nodes, dim, |_, _| (rng.gen::<f64>() - 0.5) * scale);
    let mut context = DenseMatrix::zeros(num_nodes, dim);

    let weights: Vec<f64> = if frequency.len() == num_nodes {
        frequency.iter().map(|f| f.max(0.0).powf(0.75)).collect()
    } else {
        vec![1.0; num_nodes]
    };
    let negative_table = AliasTable::new(&weights)
        .unwrap_or_else(|| AliasTable::new(&vec![1.0; num_nodes]).expect("uniform table is valid"));

    if pairs.is_empty() {
        return Ok(SgnsModel { center, context });
    }
    let total_steps = (config.epochs * pairs.len()).max(1);
    let mut step = 0usize;
    let mut grad = vec![0.0_f64; dim];
    'training: for _ in 0..config.epochs {
        for &(u, v) in pairs {
            if step.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                if ctx.should_stop_early() {
                    break 'training;
                }
                ctx.ensure_active()?;
            }
            let progress = step as f64 / total_steps as f64;
            let lr = config.learning_rate * (1.0 - 0.9 * progress);
            step += 1;
            grad.iter_mut().for_each(|g| *g = 0.0);
            // Positive update.
            sgns_update(
                &mut center,
                &mut context,
                u as usize,
                v as usize,
                1.0,
                lr,
                &mut grad,
            );
            // Negative updates.
            for _ in 0..config.negatives {
                let neg = negative_table.sample(&mut rng);
                if neg == v as usize {
                    continue;
                }
                sgns_update(
                    &mut center,
                    &mut context,
                    u as usize,
                    neg,
                    0.0,
                    lr,
                    &mut grad,
                );
            }
            // Apply the accumulated center gradient once (word2vec trick).
            let row = center.row_mut(u as usize);
            for (x, g) in row.iter_mut().zip(&grad) {
                *x += g;
            }
        }
    }
    Ok(SgnsModel { center, context })
}

/// One (positive or negative) SGNS update: adjusts the context vector
/// immediately and accumulates the center-vector gradient in `grad`.
fn sgns_update(
    center: &mut DenseMatrix,
    context: &mut DenseMatrix,
    u: usize,
    v: usize,
    label: f64,
    lr: f64,
    grad: &mut [f64],
) {
    let dim = grad.len();
    let mut dot = 0.0;
    {
        let cu = center.row(u);
        let cv = context.row(v);
        for i in 0..dim {
            dot += cu[i] * cv[i];
        }
    }
    let pred = sigmoid(dot);
    let g = (label - pred) * lr;
    // grad += g * context[v]; context[v] += g * center[u]
    for i in 0..dim {
        let cv_i = context.get(v, i);
        grad[i] += g * cv_i;
    }
    for i in 0..dim {
        let cu_i = center.get(u, i);
        context.add_to(v, i, g * cu_i);
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Counts node occurrences in a set of walks (negative-sampling frequencies).
pub fn walk_frequencies(num_nodes: usize, walks: &[Vec<u32>]) -> Vec<f64> {
    let mut freq = vec![0.0; num_nodes];
    for walk in walks {
        for &node in walk {
            freq[node as usize] += 1.0;
        }
    }
    freq
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_core::NrpError;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Two clusters: pairs only connect nodes within the same cluster, so
    /// trained embeddings should place same-cluster nodes closer.
    fn cluster_pairs(cluster_size: usize, pairs_per_node: usize) -> (usize, Vec<(u32, u32)>) {
        let n = cluster_size * 2;
        let mut pairs = Vec::new();
        let mut state = 12345u64;
        let mut next = |bound: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        for u in 0..n {
            let base = if u < cluster_size { 0 } else { cluster_size };
            for _ in 0..pairs_per_node {
                let v = base + next(cluster_size);
                if v != u {
                    pairs.push((u as u32, v as u32));
                }
            }
        }
        (n, pairs)
    }

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn sgns_separates_two_clusters() {
        let (n, pairs) = cluster_pairs(15, 60);
        let config = SgnsConfig {
            dimension: 16,
            epochs: 3,
            negatives: 5,
            learning_rate: 0.08,
            seed: 1,
        };
        let model = train_sgns(n, &pairs, &[], &config, &EmbedContext::default()).unwrap();
        // Average within-cluster similarity should exceed cross-cluster similarity.
        let mut within = 0.0;
        let mut across = 0.0;
        let mut count_w = 0;
        let mut count_a = 0;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let s = dot(model.center.row(u), model.context.row(v));
                if (u < 15) == (v < 15) {
                    within += s;
                    count_w += 1;
                } else {
                    across += s;
                    count_a += 1;
                }
            }
        }
        let within = within / count_w as f64;
        let across = across / count_a as f64;
        assert!(
            within > across,
            "within {within} should exceed across {across}"
        );
    }

    #[test]
    fn empty_pairs_return_initialized_tables() {
        let config = SgnsConfig {
            dimension: 4,
            ..Default::default()
        };
        let model = train_sgns(5, &[], &[], &config, &EmbedContext::default()).unwrap();
        assert_eq!(model.center.shape(), (5, 4));
        assert_eq!(model.context.shape(), (5, 4));
        assert!(model.center.is_finite());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (n, pairs) = cluster_pairs(8, 20);
        let config = SgnsConfig {
            dimension: 8,
            seed: 9,
            ..Default::default()
        };
        let a = train_sgns(n, &pairs, &[], &config, &EmbedContext::default()).unwrap();
        let b = train_sgns(n, &pairs, &[], &config, &EmbedContext::default()).unwrap();
        assert_eq!(a.center, b.center);
        assert_eq!(a.context, b.context);
    }

    #[test]
    fn frequencies_bias_negative_sampling_without_breaking_training() {
        let (n, pairs) = cluster_pairs(10, 30);
        let mut freq = vec![1.0; n];
        freq[0] = 100.0;
        let config = SgnsConfig {
            dimension: 8,
            epochs: 2,
            ..Default::default()
        };
        let model = train_sgns(n, &pairs, &freq, &config, &EmbedContext::default()).unwrap();
        assert!(model.center.is_finite());
        assert!(model.context.is_finite());
    }

    #[test]
    fn walk_frequencies_count_occurrences() {
        let walks = vec![vec![0u32, 1, 1], vec![2]];
        let freq = walk_frequencies(4, &walks);
        assert_eq!(freq, vec![1.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn cancellation_is_observed_inside_a_single_epoch() {
        // One epoch only: with the historical per-epoch check this run would
        // never observe the flag; the per-N-steps check must abort it.
        let (n, pairs) = cluster_pairs(10, 400);
        let config = SgnsConfig {
            dimension: 8,
            epochs: 1,
            ..Default::default()
        };
        let flag = Arc::new(AtomicBool::new(true));
        flag.store(true, Ordering::Relaxed);
        let ctx = EmbedContext::new().with_cancel_flag(Arc::clone(&flag));
        match train_sgns(n, &pairs, &[], &config, &ctx) {
            Err(NrpError::Cancelled) => {}
            other => panic!("expected Cancelled, got {:?}", other.map(|_| "model")),
        }
    }
}
