//! LINE (Tang et al., WWW 2015): large-scale information network embedding
//! with first-order and second-order proximity, trained by edge sampling with
//! negative sampling.
//!
//! Following the original paper, half of the dimension budget is trained on
//! the first-order objective (symmetric endpoint similarity) and half on the
//! second-order objective (center/context factorization); the two halves are
//! concatenated.

use nrp_core::{
    EmbedContext, EmbedOutput, Embedder, Embedding, MethodConfig, NrpError, Result, StageClock,
};
use nrp_graph::Graph;
use nrp_linalg::DenseMatrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::alias::AliasTable;

/// LINE hyper-parameters.
#[derive(Debug, Clone)]
pub struct LineParams {
    /// Total per-node embedding budget `k` (split between 1st and 2nd order).
    pub dimension: usize,
    /// Total number of edge samples (SGD steps) per order.
    pub samples: usize,
    /// Negative samples per positive edge.
    pub negatives: usize,
    /// Initial SGD learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LineParams {
    fn default() -> Self {
        Self {
            dimension: 128,
            samples: 200_000,
            negatives: 5,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

/// The LINE embedder.
#[derive(Debug, Clone, Default)]
pub struct Line {
    params: LineParams,
}

impl Line {
    /// Creates a LINE embedder.
    pub fn new(params: LineParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &LineParams {
        &self.params
    }

    fn train_order(
        &self,
        graph: &Graph,
        dim: usize,
        second_order: bool,
        seed: u64,
        ctx: &EmbedContext,
    ) -> Result<DenseMatrix> {
        let n = graph.num_nodes();
        let arcs: Vec<(u32, u32)> = graph.arcs().collect();
        if arcs.is_empty() {
            return Err(NrpError::InvalidParameter(
                "LINE requires at least one edge".into(),
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let edge_table = AliasTable::new(&vec![1.0; arcs.len()])
            .ok_or_else(|| NrpError::InvalidParameter("failed to build edge table".into()))?;
        let degree_weights: Vec<f64> = (0..n)
            .map(|u| (graph.out_degree(u as u32) as f64 + 1.0).powf(0.75))
            .collect();
        let node_table = AliasTable::new(&degree_weights)
            .ok_or_else(|| NrpError::InvalidParameter("failed to build node table".into()))?;

        let scale = 0.5 / dim as f64;
        let mut vertex = DenseMatrix::from_fn(n, dim, |_, _| (rng.gen::<f64>() - 0.5) * scale);
        let mut context = if second_order {
            DenseMatrix::zeros(n, dim)
        } else {
            DenseMatrix::from_fn(n, dim, |_, _| (rng.gen::<f64>() - 0.5) * scale)
        };

        let mut grad = vec![0.0_f64; dim];
        for step in 0..self.params.samples {
            if step.is_multiple_of(crate::sgns::CANCEL_CHECK_INTERVAL) {
                ctx.ensure_active()?;
            }
            let lr = self.params.learning_rate
                * (1.0 - 0.9 * step as f64 / self.params.samples.max(1) as f64);
            let (u, v) = arcs[edge_table.sample(&mut rng)];
            grad.iter_mut().for_each(|g| *g = 0.0);
            update(
                &mut vertex,
                &mut context,
                u as usize,
                v as usize,
                1.0,
                lr,
                &mut grad,
            );
            for _ in 0..self.params.negatives {
                let neg = node_table.sample(&mut rng);
                if neg == v as usize {
                    continue;
                }
                update(
                    &mut vertex,
                    &mut context,
                    u as usize,
                    neg,
                    0.0,
                    lr,
                    &mut grad,
                );
            }
            let row = vertex.row_mut(u as usize);
            for (x, g) in row.iter_mut().zip(&grad) {
                *x += g;
            }
        }
        Ok(vertex)
    }
}

fn update(
    vertex: &mut DenseMatrix,
    context: &mut DenseMatrix,
    u: usize,
    v: usize,
    label: f64,
    lr: f64,
    grad: &mut [f64],
) {
    let dim = grad.len();
    let mut dot = 0.0;
    for i in 0..dim {
        dot += vertex.get(u, i) * context.get(v, i);
    }
    let pred = 1.0 / (1.0 + (-dot.clamp(-30.0, 30.0)).exp());
    let g = (label - pred) * lr;
    for i in 0..dim {
        grad[i] += g * context.get(v, i);
    }
    for i in 0..dim {
        context.add_to(v, i, g * vertex.get(u, i));
    }
}

impl Embedder for Line {
    fn name(&self) -> &'static str {
        "LINE"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::Line {
            dimension: p.dimension,
            samples: p.samples,
            negatives: p.negatives,
            learning_rate: p.learning_rate,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let p = &self.params;
        if p.dimension < 2 {
            return Err(NrpError::InvalidParameter(
                "LINE needs dimension >= 2".into(),
            ));
        }
        ctx.ensure_active()?;
        let seed = ctx.seed_or(p.seed);
        let mut clock = StageClock::start();
        let half = (p.dimension / 2).max(1);
        let first = self.train_order(graph, half, false, seed, ctx)?;
        clock.lap("first_order");
        ctx.ensure_active()?;
        let second = self.train_order(graph, p.dimension - half, true, seed ^ 0x114e, ctx)?;
        clock.lap("second_order");
        let combined = first.hstack(&second).map_err(NrpError::Linalg)?;
        let embedding = Embedding::symmetric(combined, self.name());
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(seed: u64) -> LineParams {
        LineParams {
            dimension: 16,
            samples: 30_000,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn produces_finite_embedding_with_full_dimension() {
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.25, 0.02, GraphKind::Undirected, 1).unwrap();
        let e = Line::new(small_params(1)).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 40);
        assert_eq!(e.half_dimension(), 16);
        assert!(e.is_finite());
    }

    #[test]
    fn captures_community_structure() {
        let (g, community) =
            stochastic_block_model(&[25, 25], 0.3, 0.01, GraphKind::Undirected, 2).unwrap();
        let e = Line::new(small_params(2)).embed_default(&g).unwrap();
        let mut within = 0.0;
        let mut across = 0.0;
        let (mut cw, mut ca) = (0, 0);
        for u in 0..50u32 {
            for v in 0..50u32 {
                if u == v {
                    continue;
                }
                if community[u as usize] == community[v as usize] {
                    within += e.score(u, v);
                    cw += 1;
                } else {
                    across += e.score(u, v);
                    ca += 1;
                }
            }
        }
        assert!(within / cw as f64 > across / ca as f64);
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_edges(3, &[], GraphKind::Undirected).unwrap();
        assert!(Line::new(small_params(3)).embed_default(&g).is_err());
    }

    #[test]
    fn tiny_dimension_rejected() {
        let (g, _) =
            stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Undirected, 4).unwrap();
        let params = LineParams {
            dimension: 1,
            ..small_params(4)
        };
        assert!(Line::new(params).embed_default(&g).is_err());
    }
}
