//! Random-walk engines shared by the walk-based baselines.
//!
//! * [`uniform_walks`] — DeepWalk-style truncated uniform random walks.
//! * [`node2vec_walks`] — second-order biased walks with return parameter `p`
//!   and in-out parameter `q`.
//! * [`ppr_terminal`] — samples the terminal node of an α-decaying walk, i.e.
//!   a sample from the PPR distribution of the start node (used by VERSE and
//!   APP).
//!
//! Walk generation is data-parallel over start nodes with **per-node RNG
//! streams**: node `u` draws from `ChaCha8Rng::seed_from_u64(seed ^ u)`, so
//! a walk's randomness depends only on `(seed, u)` — never on which worker
//! generated it or in what order.  Output walks are ordered by start node
//! (all of a node's walks consecutively), making the result bitwise
//! identical for every thread budget, including 1.

use nrp_graph::{Graph, NodeId};
use nrp_linalg::parallel;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Start nodes per parallel work chunk.  Fixed (never derived from the
/// thread budget) so chunk boundaries are stable; the value only trades
/// scheduling overhead against load balancing.
const NODE_CHUNK: usize = 64;

/// The independent RNG stream of start node `node` under `seed`.
fn node_stream(seed: u64, node: NodeId) -> ChaCha8Rng {
    // seed_from_u64 expands through SplitMix64, so the xor'd keys decorrelate.
    ChaCha8Rng::seed_from_u64(seed ^ node as u64)
}

/// Generates `walks_per_node` uniform random walks of length `walk_length`
/// from every node (walks stop early at dangling nodes), using up to
/// `threads` scoped worker threads (see [`uniform_walks_exec`] for pooled
/// execution).
pub fn uniform_walks(
    graph: &Graph,
    walks_per_node: usize,
    walk_length: usize,
    seed: u64,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    uniform_walks_exec(
        graph,
        walks_per_node,
        walk_length,
        seed,
        &parallel::Exec::scoped(threads),
    )
}

/// Generates `walks_per_node` uniform random walks of length `walk_length`
/// from every node (walks stop early at dangling nodes), under an
/// [`parallel::Exec`] policy.
///
/// Walks are returned grouped by start node in ascending order; each node's
/// walks come from its own RNG stream, so the output is bitwise identical
/// for every thread budget and execution policy.
pub fn uniform_walks_exec(
    graph: &Graph,
    walks_per_node: usize,
    walk_length: usize,
    seed: u64,
    exec: &parallel::Exec,
) -> Vec<Vec<NodeId>> {
    let n = graph.num_nodes();
    parallel::par_chunk_map_exec(n, NODE_CHUNK, exec, |range| {
        let mut walks = Vec::with_capacity(range.len() * walks_per_node);
        for start in range {
            let start = start as NodeId;
            let mut rng = node_stream(seed, start);
            for _ in 0..walks_per_node {
                let mut walk = Vec::with_capacity(walk_length);
                walk.push(start);
                let mut current = start;
                for _ in 1..walk_length {
                    let neighbors = graph.out_neighbors(current);
                    if neighbors.is_empty() {
                        break;
                    }
                    current = neighbors[rng.gen_range(0..neighbors.len())];
                    walk.push(current);
                }
                walks.push(walk);
            }
        }
        walks
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Generates node2vec walks with return parameter `p` and in-out parameter
/// `q` (Grover & Leskovec 2016), using up to `threads` scoped worker threads
/// (see [`node2vec_walks_exec`] for pooled execution).
pub fn node2vec_walks(
    graph: &Graph,
    walks_per_node: usize,
    walk_length: usize,
    p: f64,
    q: f64,
    seed: u64,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    node2vec_walks_exec(
        graph,
        walks_per_node,
        walk_length,
        p,
        q,
        seed,
        &parallel::Exec::scoped(threads),
    )
}

/// Generates node2vec walks with return parameter `p` and in-out parameter
/// `q` (Grover & Leskovec 2016), under an [`parallel::Exec`] policy.
/// Transition weights from `prev -> current -> next` are `1/p` if `next ==
/// prev`, `1` if `next` is a neighbour of `prev`, and `1/q` otherwise;
/// weights are sampled by rejection-free normalization per step (the graphs
/// here are small enough that building per-step weight vectors is cheaper
/// than precomputing alias tables for every edge pair).
///
/// Ordering and determinism follow [`uniform_walks`]: per-node RNG streams,
/// walks grouped by ascending start node, bitwise identical for every thread
/// budget and execution policy.
pub fn node2vec_walks_exec(
    graph: &Graph,
    walks_per_node: usize,
    walk_length: usize,
    p: f64,
    q: f64,
    seed: u64,
    exec: &parallel::Exec,
) -> Vec<Vec<NodeId>> {
    let n = graph.num_nodes();
    parallel::par_chunk_map_exec(n, NODE_CHUNK, exec, |range| {
        let mut walks = Vec::with_capacity(range.len() * walks_per_node);
        let mut weights: Vec<f64> = Vec::new();
        for start in range {
            let start = start as NodeId;
            let mut rng = node_stream(seed, start);
            for _ in 0..walks_per_node {
                let mut walk = Vec::with_capacity(walk_length);
                walk.push(start);
                let mut prev: Option<NodeId> = None;
                let mut current = start;
                for _ in 1..walk_length {
                    let neighbors = graph.out_neighbors(current);
                    if neighbors.is_empty() {
                        break;
                    }
                    let next = match prev {
                        None => neighbors[rng.gen_range(0..neighbors.len())],
                        Some(prev_node) => {
                            weights.clear();
                            weights.reserve(neighbors.len());
                            for &cand in neighbors {
                                let w = if cand == prev_node {
                                    1.0 / p
                                } else if graph.has_arc(prev_node, cand) {
                                    1.0
                                } else {
                                    1.0 / q
                                };
                                weights.push(w);
                            }
                            let total: f64 = weights.iter().sum();
                            let mut draw = rng.gen::<f64>() * total;
                            let mut chosen = neighbors[neighbors.len() - 1];
                            for (&cand, &w) in neighbors.iter().zip(&weights) {
                                if draw < w {
                                    chosen = cand;
                                    break;
                                }
                                draw -= w;
                            }
                            chosen
                        }
                    };
                    walk.push(next);
                    prev = Some(current);
                    current = next;
                }
                walks.push(walk);
            }
        }
        walks
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Samples the terminal node of an α-decaying random walk from `start`, i.e.
/// one draw from the PPR distribution `π(start, ·)`.  Dangling nodes absorb
/// the walk.
pub fn ppr_terminal<R: Rng>(graph: &Graph, start: NodeId, alpha: f64, rng: &mut R) -> NodeId {
    let mut current = start;
    loop {
        if rng.gen::<f64>() < alpha {
            return current;
        }
        let neighbors = graph.out_neighbors(current);
        if neighbors.is_empty() {
            return current;
        }
        current = neighbors[rng.gen_range(0..neighbors.len())];
    }
}

/// Extracts (center, context) skip-gram pairs from walks with the given
/// window size.
pub fn window_pairs(walks: &[Vec<NodeId>], window: usize) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for walk in walks {
        for (i, &center) in walk.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(walk.len());
            for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                if i != j {
                    pairs.push((center, context));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::simple::{cycle, directed_path, star};
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    #[test]
    fn uniform_walks_have_requested_shape() {
        let g = cycle(10).unwrap();
        let walks = uniform_walks(&g, 3, 8, 1, 1);
        assert_eq!(walks.len(), 30);
        assert!(walks.iter().all(|w| w.len() == 8));
        // Every consecutive pair must be an arc.
        for walk in &walks {
            for pair in walk.windows(2) {
                assert!(g.has_arc(pair[0], pair[1]));
            }
        }
        // Walks are grouped by start node in ascending order.
        for (i, walk) in walks.iter().enumerate() {
            assert_eq!(walk[0], (i / 3) as NodeId);
        }
    }

    #[test]
    fn uniform_walks_are_bitwise_invariant_across_thread_counts() {
        let (g, _) =
            stochastic_block_model(&[40, 40], 0.2, 0.03, GraphKind::Undirected, 9).unwrap();
        let reference = uniform_walks(&g, 4, 12, 7, 1);
        for threads in [2usize, 3, 8] {
            assert_eq!(
                uniform_walks(&g, 4, 12, 7, threads),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn node2vec_walks_are_bitwise_invariant_across_thread_counts() {
        let (g, _) = stochastic_block_model(&[35, 35], 0.2, 0.03, GraphKind::Directed, 11).unwrap();
        let reference = node2vec_walks(&g, 3, 10, 0.5, 2.0, 13, 1);
        for threads in [2usize, 4] {
            assert_eq!(
                node2vec_walks(&g, 3, 10, 0.5, 2.0, 13, threads),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn walks_stop_at_dangling_nodes() {
        let g = directed_path(4).unwrap();
        let walks = uniform_walks(&g, 1, 10, 2, 1);
        // The walk starting at node 3 (dangling) has length 1.
        let w3 = walks.iter().find(|w| w[0] == 3).unwrap();
        assert_eq!(w3.len(), 1);
        // No walk exceeds 4 nodes on a 4-node path.
        assert!(walks.iter().all(|w| w.len() <= 4));
    }

    #[test]
    fn node2vec_low_p_returns_often() {
        // With p << 1 the walk frequently returns to the previous node.
        let g = cycle(20).unwrap();
        let walks = node2vec_walks(&g, 2, 30, 0.05, 1.0, 3, 1);
        let mut returns = 0usize;
        let mut steps = 0usize;
        for walk in &walks {
            for w in walk.windows(3) {
                steps += 1;
                if w[0] == w[2] {
                    returns += 1;
                }
            }
        }
        let return_rate_low_p = returns as f64 / steps as f64;
        let walks = node2vec_walks(&g, 2, 30, 20.0, 1.0, 3, 1);
        let mut returns_high = 0usize;
        let mut steps_high = 0usize;
        for walk in &walks {
            for w in walk.windows(3) {
                steps_high += 1;
                if w[0] == w[2] {
                    returns_high += 1;
                }
            }
        }
        let return_rate_high_p = returns_high as f64 / steps_high as f64;
        assert!(
            return_rate_low_p > return_rate_high_p + 0.1,
            "low p should return more often: {return_rate_low_p} vs {return_rate_high_p}"
        );
    }

    #[test]
    fn node2vec_walks_follow_arcs() {
        let (g, _) = stochastic_block_model(&[15, 15], 0.3, 0.05, GraphKind::Directed, 5).unwrap();
        let walks = node2vec_walks(&g, 1, 6, 1.0, 2.0, 5, 2);
        for walk in &walks {
            for pair in walk.windows(2) {
                assert!(g.has_arc(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn ppr_terminal_prefers_nearby_nodes() {
        let g = star(10).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut at_center = 0usize;
        let samples = 20_000;
        for _ in 0..samples {
            if ppr_terminal(&g, 1, 0.15, &mut rng) == 0 {
                at_center += 1;
            }
        }
        // From a leaf, the walk passes through the hub constantly; the hub's
        // PPR value is far above 1/n.
        let frac = at_center as f64 / samples as f64;
        assert!(frac > 0.3, "hub fraction {frac}");
    }

    #[test]
    fn ppr_terminal_matches_exact_distribution_roughly() {
        let g = cycle(6).unwrap();
        let alpha = 0.2;
        let exact = nrp_core::ppr::single_source_ppr(&g, 0, alpha, 1e-12).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let samples = 30_000;
        let mut counts = [0usize; 6];
        for _ in 0..samples {
            counts[ppr_terminal(&g, 0, alpha, &mut rng) as usize] += 1;
        }
        for v in 0..6 {
            let empirical = counts[v] as f64 / samples as f64;
            assert!(
                (empirical - exact[v]).abs() < 0.02,
                "node {v}: empirical {empirical}, exact {}",
                exact[v]
            );
        }
    }

    #[test]
    fn window_pairs_count_and_symmetry() {
        let walks = vec![vec![0u32, 1, 2, 3]];
        let pairs = window_pairs(&walks, 1);
        // Interior nodes contribute 2 pairs, endpoints 1: total 6.
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 0)));
        assert!(!pairs.contains(&(0, 2)));
    }

    #[test]
    fn window_pairs_respects_window_size() {
        let walks = vec![vec![0u32, 1, 2, 3, 4]];
        let pairs = window_pairs(&walks, 2);
        assert!(pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(0, 3)));
    }
}
