//! node2vec (Grover & Leskovec, KDD 2016): second-order biased random walks
//! fed to skip-gram with negative sampling.

use nrp_core::{
    EmbedContext, EmbedOutput, Embedder, Embedding, MethodConfig, NrpError, Result, StageClock,
};
use nrp_graph::Graph;

use crate::sgns::{train_sgns, walk_frequencies, SgnsConfig};
use crate::walks::{node2vec_walks_exec, window_pairs};

/// node2vec hyper-parameters.
#[derive(Debug, Clone)]
pub struct Node2VecParams {
    /// Total per-node embedding budget `k`.
    pub dimension: usize,
    /// Return parameter `p` (small `p` keeps walks local).
    pub p: f64,
    /// In-out parameter `q` (large `q` keeps walks close to the start).
    pub q: f64,
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Length of each walk.
    pub walk_length: usize,
    /// Skip-gram window size.
    pub window: usize,
    /// SGNS epochs.
    pub epochs: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Node2VecParams {
    fn default() -> Self {
        Self {
            dimension: 128,
            p: 1.0,
            q: 1.0,
            walks_per_node: 10,
            walk_length: 40,
            window: 5,
            epochs: 2,
            negatives: 5,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

/// The node2vec embedder.
#[derive(Debug, Clone, Default)]
pub struct Node2Vec {
    params: Node2VecParams,
}

impl Node2Vec {
    /// Creates a node2vec embedder.
    pub fn new(params: Node2VecParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &Node2VecParams {
        &self.params
    }
}

impl Embedder for Node2Vec {
    fn name(&self) -> &'static str {
        "node2vec"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::Node2Vec {
            dimension: p.dimension,
            p: p.p,
            q: p.q,
            walks_per_node: p.walks_per_node,
            walk_length: p.walk_length,
            window: p.window,
            epochs: p.epochs,
            negatives: p.negatives,
            learning_rate: p.learning_rate,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let p = &self.params;
        if p.p <= 0.0 || p.q <= 0.0 {
            return Err(NrpError::InvalidParameter(format!(
                "node2vec p and q must be positive (got p={}, q={})",
                p.p, p.q
            )));
        }
        ctx.ensure_active()?;
        let seed = ctx.seed_or(p.seed);
        let threads = ctx.thread_budget();
        let mut clock = StageClock::start();
        // Per-node RNG streams keep the walks bitwise identical for any
        // thread budget.
        let walks = node2vec_walks_exec(
            graph,
            p.walks_per_node,
            p.walk_length,
            p.p,
            p.q,
            seed,
            &ctx.exec(),
        );
        let pairs = window_pairs(&walks, p.window);
        let freq = walk_frequencies(graph.num_nodes(), &walks);
        clock.lap_parallel("walks", threads);
        ctx.ensure_active()?;
        let config = SgnsConfig {
            dimension: p.dimension.max(1),
            epochs: p.epochs,
            negatives: p.negatives,
            learning_rate: p.learning_rate,
            seed,
        };
        let model = train_sgns(graph.num_nodes(), &pairs, &freq, &config, ctx)?;
        clock.lap("sgns");
        let embedding = Embedding::symmetric(model.center, self.name());
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(seed: u64) -> Node2VecParams {
        Node2VecParams {
            dimension: 16,
            walks_per_node: 6,
            walk_length: 20,
            window: 4,
            p: 0.5,
            q: 2.0,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn produces_finite_embedding_of_right_size() {
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.25, 0.02, GraphKind::Undirected, 1).unwrap();
        let e = Node2Vec::new(small_params(1)).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 40);
        assert_eq!(e.half_dimension(), 16);
        assert!(e.is_finite());
    }

    #[test]
    fn community_structure_is_captured() {
        let (g, community) =
            stochastic_block_model(&[25, 25], 0.3, 0.01, GraphKind::Undirected, 2).unwrap();
        let e = Node2Vec::new(small_params(2)).embed_default(&g).unwrap();
        let mut within = 0.0;
        let mut across = 0.0;
        let mut count_w = 0;
        let mut count_a = 0;
        for u in 0..50u32 {
            for v in 0..50u32 {
                if u != v {
                    if community[u as usize] == community[v as usize] {
                        within += e.score(u, v);
                        count_w += 1;
                    } else {
                        across += e.score(u, v);
                        count_a += 1;
                    }
                }
            }
        }
        assert!(within / count_w as f64 > across / count_a as f64);
    }

    #[test]
    fn invalid_p_q_rejected() {
        let (g, _) =
            stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Undirected, 3).unwrap();
        let params = Node2VecParams {
            p: 0.0,
            ..small_params(3)
        };
        assert!(Node2Vec::new(params).embed_default(&g).is_err());
        let params = Node2VecParams {
            q: -1.0,
            ..small_params(3)
        };
        assert!(Node2Vec::new(params).embed_default(&g).is_err());
    }
}
