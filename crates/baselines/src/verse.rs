//! VERSE (Tsitsulin et al., WWW 2018): versatile graph embeddings that
//! preserve a chosen similarity measure — here, as in the original paper and
//! in the NRP paper's experiments, personalized PageRank.
//!
//! Training samples a positive context for node `u` by running an α-decaying
//! random walk from `u` (a draw from `π(u, ·)`) and applies noise-contrastive
//! updates against uniformly sampled negatives.  VERSE produces a single
//! vector per node, which is exactly why it cannot capture edge direction —
//! the weakness on directed graphs that the NRP paper points out and that the
//! link-prediction harness reproduces with the edge-features fallback.

use nrp_core::{
    EmbedContext, EmbedOutput, Embedder, Embedding, MethodConfig, NrpError, Result, StageClock,
};
use nrp_graph::Graph;
use nrp_linalg::DenseMatrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::walks::ppr_terminal;

/// VERSE hyper-parameters.
#[derive(Debug, Clone)]
pub struct VerseParams {
    /// Per-node embedding dimension.
    pub dimension: usize,
    /// Random-walk decay factor `α` (matched to NRP's 0.15 for fairness).
    pub alpha: f64,
    /// Positive samples drawn per node per epoch.
    pub samples_per_node: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Negative samples per positive.
    pub negatives: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VerseParams {
    fn default() -> Self {
        Self {
            dimension: 128,
            alpha: 0.15,
            samples_per_node: 40,
            epochs: 3,
            negatives: 3,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

/// The VERSE embedder.
#[derive(Debug, Clone, Default)]
pub struct Verse {
    params: VerseParams,
}

impl Verse {
    /// Creates a VERSE embedder.
    pub fn new(params: VerseParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &VerseParams {
        &self.params
    }
}

impl Embedder for Verse {
    fn name(&self) -> &'static str {
        "VERSE"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::Verse {
            dimension: p.dimension,
            alpha: p.alpha,
            samples_per_node: p.samples_per_node,
            epochs: p.epochs,
            negatives: p.negatives,
            learning_rate: p.learning_rate,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let p = &self.params;
        if !(p.alpha > 0.0 && p.alpha < 1.0) {
            return Err(NrpError::InvalidParameter(format!(
                "alpha must be in (0,1), got {}",
                p.alpha
            )));
        }
        if p.dimension == 0 {
            return Err(NrpError::InvalidParameter(
                "dimension must be positive".into(),
            ));
        }
        ctx.ensure_active()?;
        let seed = ctx.seed_or(p.seed);
        let mut clock = StageClock::start();
        let n = graph.num_nodes();
        let dim = p.dimension;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scale = 0.5 / dim as f64;
        let mut vectors = DenseMatrix::from_fn(n, dim, |_, _| (rng.gen::<f64>() - 0.5) * scale);
        clock.lap("init");
        let total_steps = (p.epochs * n * p.samples_per_node).max(1);
        let mut step = 0usize;
        for _ in 0..p.epochs {
            for u in 0..n {
                for _ in 0..p.samples_per_node {
                    if step.is_multiple_of(crate::sgns::CANCEL_CHECK_INTERVAL) {
                        ctx.ensure_active()?;
                    }
                    let lr = p.learning_rate * (1.0 - 0.9 * step as f64 / total_steps as f64);
                    step += 1;
                    let pos = ppr_terminal(graph, u as u32, p.alpha, &mut rng) as usize;
                    nce_update(&mut vectors, u, pos, 1.0, lr);
                    for _ in 0..p.negatives {
                        let neg = rng.gen_range(0..n);
                        if neg != u {
                            nce_update(&mut vectors, u, neg, 0.0, lr);
                        }
                    }
                }
            }
        }
        clock.lap("nce_training");
        let embedding = Embedding::symmetric(vectors, self.name());
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

/// A single noise-contrastive update on the shared vector table.
fn nce_update(vectors: &mut DenseMatrix, u: usize, v: usize, label: f64, lr: f64) {
    let dim = vectors.cols();
    let mut dot = 0.0;
    for i in 0..dim {
        dot += vectors.get(u, i) * vectors.get(v, i);
    }
    let pred = 1.0 / (1.0 + (-dot.clamp(-30.0, 30.0)).exp());
    let g = (label - pred) * lr;
    for i in 0..dim {
        let vu = vectors.get(u, i);
        let vv = vectors.get(v, i);
        vectors.add_to(u, i, g * vv);
        vectors.add_to(v, i, g * vu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(seed: u64) -> VerseParams {
        VerseParams {
            dimension: 16,
            samples_per_node: 20,
            epochs: 2,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn produces_single_vector_embedding() {
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.25, 0.02, GraphKind::Undirected, 1).unwrap();
        let e = Verse::new(small_params(1)).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 40);
        assert!(e.is_finite());
        // Single-vector method: symmetric scores.
        assert_eq!(e.score(1, 2), e.score(2, 1));
    }

    #[test]
    fn community_similarity_dominates() {
        let (g, community) =
            stochastic_block_model(&[25, 25], 0.3, 0.01, GraphKind::Undirected, 2).unwrap();
        let e = Verse::new(small_params(2)).embed_default(&g).unwrap();
        let mut within = 0.0;
        let mut across = 0.0;
        let (mut cw, mut ca) = (0, 0);
        for u in 0..50u32 {
            for v in 0..50u32 {
                if u == v {
                    continue;
                }
                if community[u as usize] == community[v as usize] {
                    within += e.score(u, v);
                    cw += 1;
                } else {
                    across += e.score(u, v);
                    ca += 1;
                }
            }
        }
        assert!(within / cw as f64 > across / ca as f64);
    }

    #[test]
    fn invalid_params_rejected() {
        let (g, _) =
            stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Undirected, 3).unwrap();
        assert!(Verse::new(VerseParams {
            alpha: 0.0,
            ..small_params(3)
        })
        .embed_default(&g)
        .is_err());
        assert!(Verse::new(VerseParams {
            dimension: 0,
            ..small_params(3)
        })
        .embed_default(&g)
        .is_err());
    }
}
