//! Laplacian spectral embedding (Tang & Liu, DMKD 2011): the classic
//! factorization baseline that uses the leading eigenvectors of the
//! normalized adjacency `D^{-1/2} A D^{-1/2}` (equivalently the smallest
//! eigenvectors of the normalized Laplacian) as node features.  One-hop
//! information only — the weakness relative to multi-hop methods the NRP
//! paper points out.

use nrp_core::{
    EmbedContext, EmbedOutput, Embedder, Embedding, MethodConfig, NrpError, Result, StageClock,
};
use nrp_graph::Graph;
use nrp_linalg::eig::symmetric_eigen;
use nrp_linalg::{DenseMatrix, LinearOperator, RandomizedSvd, RandomizedSvdMethod};

/// Spectral-embedding hyper-parameters.
#[derive(Debug, Clone)]
pub struct SpectralParams {
    /// Per-node embedding dimension (single vector per node).
    pub dimension: usize,
    /// Oversampling for the randomized eigen-solver.
    pub oversample: usize,
    /// Power iterations for the randomized eigen-solver.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpectralParams {
    fn default() -> Self {
        Self {
            dimension: 128,
            oversample: 8,
            iterations: 8,
            seed: 0,
        }
    }
}

/// The spectral embedder.
#[derive(Debug, Clone, Default)]
pub struct SpectralEmbedding {
    params: SpectralParams,
}

impl SpectralEmbedding {
    /// Creates a spectral embedder.
    pub fn new(params: SpectralParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &SpectralParams {
        &self.params
    }
}

/// The symmetric normalized adjacency `D^{-1/2} (A + Aᵀ)/…`-style operator.
/// Direction is ignored (spectral embedding is undirected-only, as in the
/// paper's evaluation protocol).
struct NormalizedAdjacency<'g> {
    graph: &'g Graph,
    inv_sqrt_degree: Vec<f64>,
}

impl<'g> NormalizedAdjacency<'g> {
    fn new(graph: &'g Graph) -> Self {
        let inv_sqrt_degree = (0..graph.num_nodes())
            .map(|u| {
                // Use total degree (in + out) so directed inputs are handled
                // as their undirected projection.
                let d = graph.out_degree(u as u32) + graph.in_degree(u as u32);
                if d == 0 {
                    0.0
                } else {
                    1.0 / (d as f64 / if graph.kind().is_directed() { 1.0 } else { 2.0 }).sqrt()
                }
            })
            .collect();
        Self {
            graph,
            inv_sqrt_degree,
        }
    }
}

impl LinearOperator for NormalizedAdjacency<'_> {
    fn nrows(&self) -> usize {
        self.graph.num_nodes()
    }

    fn ncols(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &DenseMatrix) -> nrp_linalg::Result<DenseMatrix> {
        let n = self.graph.num_nodes();
        let mut out = DenseMatrix::zeros(n, x.cols());
        for u in 0..n {
            let du = self.inv_sqrt_degree[u];
            if du == 0.0 {
                continue;
            }
            let out_row = out.row_mut(u);
            // Symmetrized neighbours: union of out- and in-neighbours.
            for &v in self.graph.out_neighbors(u as u32) {
                let dv = self.inv_sqrt_degree[v as usize];
                let x_row = x.row(v as usize);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += du * dv * xv;
                }
            }
            if self.graph.kind().is_directed() {
                for &v in self.graph.in_neighbors(u as u32) {
                    if self.graph.has_arc(u as u32, v) {
                        continue; // already counted
                    }
                    let dv = self.inv_sqrt_degree[v as usize];
                    let x_row = x.row(v as usize);
                    for (o, &xv) in out_row.iter_mut().zip(x_row) {
                        *o += du * dv * xv;
                    }
                }
            }
        }
        Ok(out)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> nrp_linalg::Result<DenseMatrix> {
        // The operator is symmetric by construction.
        self.apply(x)
    }
}

impl Embedder for SpectralEmbedding {
    fn name(&self) -> &'static str {
        "Spectral"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::Spectral {
            dimension: p.dimension,
            oversample: p.oversample,
            iterations: p.iterations,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let p = &self.params;
        if p.dimension == 0 {
            return Err(NrpError::InvalidParameter(
                "dimension must be positive".into(),
            ));
        }
        ctx.ensure_active()?;
        let seed = ctx.seed_or(p.seed);
        let threads = ctx.thread_budget();
        let mut clock = StageClock::start();
        let op = NormalizedAdjacency::new(graph);
        let rank = p.dimension.min(graph.num_nodes());
        let svd = RandomizedSvd::new(rank)
            .oversample(p.oversample)
            .iterations(p.iterations)
            .method(RandomizedSvdMethod::BlockKrylov)
            .seed(seed)
            .exec(ctx.exec())
            .compute(&op)?;
        clock.lap_parallel("range_finder", threads);
        ctx.ensure_active()?;
        // Rayleigh–Ritz rotation to obtain proper (signed) eigenpairs.
        let au = op.apply(&svd.u)?;
        let projected = svd.u.transpose_matmul(&au)?;
        let eig = symmetric_eigen(&projected)?;
        // Keep the pairs with the largest |λ| and weight each direction by
        // |λ|^(1/2) (with the eigenvalue sign folded into the backward block,
        // as in adjacency spectral embedding): unweighted Ritz vectors give
        // near-null noise directions the same influence on the inner-product
        // score as the informative community eigenvectors, which drowns the
        // structural signal once the dimension exceeds the eigengap.
        let scores = eig.values.clone();
        let (forward, backward) = crate::ritz::signed_ritz_embedding(&svd.u, &eig, &scores, rank)?;
        let embedding = Embedding::new(forward, backward, self.name())?;
        clock.lap("rayleigh_ritz");
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(seed: u64) -> SpectralParams {
        SpectralParams {
            dimension: 8,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn produces_finite_embedding() {
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.25, 0.02, GraphKind::Undirected, 1).unwrap();
        let e = SpectralEmbedding::new(small_params(1))
            .embed_default(&g)
            .unwrap();
        assert_eq!(e.num_nodes(), 40);
        assert!(e.is_finite());
    }

    #[test]
    fn separates_two_communities() {
        let (g, community) =
            stochastic_block_model(&[30, 30], 0.3, 0.01, GraphKind::Undirected, 2).unwrap();
        let e = SpectralEmbedding::new(small_params(2))
            .embed_default(&g)
            .unwrap();
        let cos = |u: u32, v: u32| {
            let a = e.forward_vector(u);
            let b = e.forward_vector(v);
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            if na > 0.0 && nb > 0.0 {
                dot / (na * nb)
            } else {
                0.0
            }
        };
        let mut within = 0.0;
        let mut across = 0.0;
        let (mut cw, mut ca) = (0, 0);
        for u in (0..60u32).step_by(2) {
            for v in (1..60u32).step_by(2) {
                if u == v {
                    continue;
                }
                if community[u as usize] == community[v as usize] {
                    within += cos(u, v);
                    cw += 1;
                } else {
                    across += cos(u, v);
                    ca += 1;
                }
            }
        }
        assert!(within / cw as f64 > across / ca as f64);
    }

    #[test]
    fn handles_directed_graphs_via_symmetrization() {
        let (g, _) = stochastic_block_model(&[15, 15], 0.25, 0.03, GraphKind::Directed, 3).unwrap();
        let e = SpectralEmbedding::new(small_params(3))
            .embed_default(&g)
            .unwrap();
        assert!(e.is_finite());
    }

    #[test]
    fn invalid_dimension_rejected() {
        let (g, _) =
            stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Undirected, 4).unwrap();
        assert!(SpectralEmbedding::new(SpectralParams {
            dimension: 0,
            ..small_params(4)
        })
        .embed_default(&g)
        .is_err());
    }
}
