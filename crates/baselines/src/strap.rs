//! STRAP (Yin & Wei, KDD 2019): scalable graph embeddings via sparse
//! transpose proximities.
//!
//! STRAP runs forward push from every node on the graph `G` and on its
//! transpose `Gᵀ`, keeps only PPR estimates above `δ/2`, assembles the sparse
//! transpose-proximity matrix `M[u, v] = π_G(u, v) + π_{Gᵀ}(u, v)`, and
//! factorizes it with a randomized SVD into forward/backward embeddings
//! `X = U √Σ`, `Y = V √Σ`.
//!
//! As in the original paper (and as criticized by the NRP paper), the error
//! threshold `δ` is a constant rather than `1/n`, which is what keeps the
//! proximity matrix sparse at the price of discarding small PPR values.

use std::cell::RefCell;

use nrp_core::push::{forward_push_into, PushWorkspace};
use nrp_core::{
    parallel, EmbedContext, EmbedOutput, Embedder, Embedding, MethodConfig, NrpError, Result,
    StageClock,
};
use nrp_graph::Graph;
use nrp_linalg::{
    DanglingPolicy, RandomizedSvd, RandomizedSvdMethod, SparseMatrix, SparseTransposePair,
};

std::thread_local! {
    /// One push workspace per worker thread, reused across sources, chunks
    /// and — when the context's persistent worker pool serves the fan-out —
    /// across entire embeddings: after warm-up every push runs with zero
    /// heap allocation (see `nrp_core::push`).
    static PUSH_WORKSPACE: RefCell<PushWorkspace> = RefCell::new(PushWorkspace::new());
}

/// Source nodes per parallel push chunk.  Fixed (never derived from the
/// thread budget) so the triplet order — and therefore the assembled
/// proximity matrix — is identical for every budget; small enough that the
/// dynamic queue balances the skewed per-source push costs.
const SOURCE_CHUNK: usize = 32;

/// STRAP hyper-parameters.
#[derive(Debug, Clone)]
pub struct StrapParams {
    /// Total per-node budget `k`; forward and backward get `k/2` each.
    pub dimension: usize,
    /// Random-walk decay factor `α`.
    pub alpha: f64,
    /// PPR error threshold `δ` (the paper's default is `1e-5`; on the small
    /// synthetic graphs used here a larger default keeps runtimes sensible
    /// while preserving the method's behaviour).
    pub delta: f64,
    /// Power iterations for the randomized SVD.
    pub iterations: usize,
    /// How the forward pushes treat dangling nodes (self-loop by default,
    /// matching the workspace-wide walk semantics; the policy applies to the
    /// pushes on both `G` and `Gᵀ`).
    pub dangling: DanglingPolicy,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StrapParams {
    fn default() -> Self {
        Self {
            dimension: 128,
            alpha: 0.15,
            delta: 1e-4,
            iterations: 6,
            dangling: DanglingPolicy::SelfLoop,
            seed: 0,
        }
    }
}

/// The STRAP embedder.
#[derive(Debug, Clone, Default)]
pub struct Strap {
    params: StrapParams,
}

impl Strap {
    /// Creates a STRAP embedder.
    pub fn new(params: StrapParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &StrapParams {
        &self.params
    }

    /// Builds the sparse transpose-proximity matrix `Π_G + Π_{Gᵀ}` with
    /// entries below `δ/2` discarded, under a default execution context
    /// (sequential, not cancellable).
    pub fn proximity_matrix(&self, graph: &Graph) -> Result<SparseMatrix> {
        self.proximity_matrix_with(graph, &EmbedContext::default())
    }

    /// [`Strap::proximity_matrix`] under an explicit execution context: the
    /// per-source forward pushes fan out across the context's thread budget
    /// (the canonical parallel axis of the PPR literature, served by the
    /// context's persistent worker pool) and cancellation is honoured per
    /// source chunk.
    ///
    /// Chunks of sources are fixed and their triplet lists are concatenated
    /// in source order, so the assembled matrix is bitwise identical for
    /// every thread budget and execution policy.  Each worker keeps one
    /// [`PushWorkspace`] in thread-local storage, so per-source cost is
    /// proportional to the push's locality with zero allocation after
    /// warm-up — workspace reuse never changes a push's result.
    pub fn proximity_matrix_with(&self, graph: &Graph, ctx: &EmbedContext) -> Result<SparseMatrix> {
        let p = &self.params;
        let n = graph.num_nodes();
        let reverse = graph.reverse();
        let keep = p.delta / 2.0;
        let chunked: Vec<Vec<(usize, usize, f64)>> = parallel::try_par_chunk_map_exec(
            n,
            SOURCE_CHUNK,
            &ctx.exec(),
            |range| -> Result<Vec<(usize, usize, f64)>> {
                PUSH_WORKSPACE.with(|workspace| {
                    let ws = &mut workspace.borrow_mut();
                    let mut triplets = Vec::new();
                    for source in range {
                        // Per source, not per chunk: a single push is the
                        // unit of unbounded work, so this bounds cancellation
                        // latency by one push pair.
                        ctx.ensure_active()?;
                        for graph_ref in [graph, &reverse] {
                            forward_push_into(
                                graph_ref,
                                source as u32,
                                p.alpha,
                                p.delta,
                                p.dangling,
                                ws,
                            )?;
                            for &(target, estimate) in ws.estimates() {
                                if estimate >= keep {
                                    triplets.push((source, target as usize, estimate));
                                }
                            }
                        }
                    }
                    Ok(triplets)
                })
            },
        )?;
        let triplets: Vec<(usize, usize, f64)> = chunked.into_iter().flatten().collect();
        SparseMatrix::from_triplets(n, n, &triplets).map_err(NrpError::Linalg)
    }
}

impl Embedder for Strap {
    fn name(&self) -> &'static str {
        "STRAP"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::Strap {
            dimension: p.dimension,
            alpha: p.alpha,
            delta: p.delta,
            iterations: p.iterations,
            dangling: p.dangling,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let p = &self.params;
        if p.dimension < 2 {
            return Err(NrpError::InvalidParameter(
                "dimension must be at least 2".into(),
            ));
        }
        if !(p.alpha > 0.0 && p.alpha < 1.0) {
            return Err(NrpError::InvalidParameter(format!(
                "alpha must be in (0,1), got {}",
                p.alpha
            )));
        }
        if p.delta <= 0.0 {
            return Err(NrpError::InvalidParameter(format!(
                "delta must be positive, got {}",
                p.delta
            )));
        }
        ctx.ensure_active()?;
        let seed = ctx.seed_or(p.seed);
        let threads = ctx.thread_budget();
        let mut clock = StageClock::start();
        let half = (p.dimension / 2).max(1);
        let proximity = self.proximity_matrix_with(graph, ctx)?;
        clock.lap_parallel("proximity", threads);
        ctx.ensure_active()?;
        // Pair the proximity matrix with its transpose so both directions of
        // the SVD's block matmuls are row-parallel gathers.
        let operator = SparseTransposePair::new(proximity);
        let svd = RandomizedSvd::new(half)
            .iterations(p.iterations)
            .method(RandomizedSvdMethod::BlockKrylov)
            .seed(seed)
            .exec(ctx.exec())
            .compute(&operator)?;
        clock.lap_parallel("svd", threads);
        let sqrt_sigma: Vec<f64> = svd
            .singular_values
            .iter()
            .map(|s| s.max(0.0).sqrt())
            .collect();
        let mut forward = svd.u;
        let mut backward = svd.v;
        forward.scale_cols(&sqrt_sigma).map_err(NrpError::Linalg)?;
        backward.scale_cols(&sqrt_sigma).map_err(NrpError::Linalg)?;
        let embedding = Embedding::new(forward, backward, self.name())?;
        clock.lap("scale");
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_core::ppr::PprMatrix;
    use nrp_graph::generators::simple::cycle;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(seed: u64) -> StrapParams {
        StrapParams {
            dimension: 16,
            delta: 1e-4,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn proximity_matrix_approximates_symmetrized_ppr() {
        let g = cycle(8).unwrap();
        let strap = Strap::new(small_params(1));
        let m = strap.proximity_matrix(&g).unwrap();
        let exact = PprMatrix::exact(&g, 0.15, 1e-12).unwrap();
        // Undirected cycle: reverse PPR equals forward PPR, so M ≈ 2Π.
        for u in 0..8u32 {
            for v in 0..8u32 {
                let expected = 2.0 * exact.get(u, v);
                let got = m.get(u as usize, v as usize);
                assert!(
                    (got - expected).abs() < 0.05 || got == 0.0 && expected < 0.05,
                    "({u},{v}): {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn produces_forward_backward_embedding() {
        let (g, _) = stochastic_block_model(&[20, 20], 0.25, 0.02, GraphKind::Directed, 2).unwrap();
        let e = Strap::new(small_params(2)).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 40);
        assert_eq!(e.half_dimension(), 8);
        assert!(e.is_finite());
    }

    #[test]
    fn edges_score_above_non_edges() {
        let (g, _) =
            stochastic_block_model(&[25, 25], 0.3, 0.01, GraphKind::Undirected, 3).unwrap();
        let e = Strap::new(small_params(3)).embed_default(&g).unwrap();
        let mut edge_mean = 0.0;
        let mut cnt = 0usize;
        for (u, v) in g.edges() {
            edge_mean += e.score(u, v);
            cnt += 1;
        }
        edge_mean /= cnt as f64;
        let mut non_edge_mean = 0.0;
        let mut non_cnt = 0usize;
        for u in 0..50u32 {
            for v in 0..50u32 {
                if u != v && !g.has_arc(u, v) {
                    non_edge_mean += e.score(u, v);
                    non_cnt += 1;
                }
            }
        }
        non_edge_mean /= non_cnt as f64;
        assert!(edge_mean > non_edge_mean);
    }

    #[test]
    fn larger_delta_gives_sparser_proximity() {
        let (g, _) =
            stochastic_block_model(&[25, 25], 0.15, 0.02, GraphKind::Undirected, 4).unwrap();
        let coarse = Strap::new(StrapParams {
            delta: 1e-2,
            ..small_params(4)
        })
        .proximity_matrix(&g)
        .unwrap();
        let fine = Strap::new(StrapParams {
            delta: 1e-5,
            ..small_params(4)
        })
        .proximity_matrix(&g)
        .unwrap();
        assert!(fine.nnz() >= coarse.nnz());
    }

    #[test]
    fn invalid_params_rejected() {
        let (g, _) =
            stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Undirected, 5).unwrap();
        assert!(Strap::new(StrapParams {
            dimension: 1,
            ..small_params(5)
        })
        .embed_default(&g)
        .is_err());
        assert!(Strap::new(StrapParams {
            alpha: 0.0,
            ..small_params(5)
        })
        .embed_default(&g)
        .is_err());
        assert!(Strap::new(StrapParams {
            delta: 0.0,
            ..small_params(5)
        })
        .embed_default(&g)
        .is_err());
    }
}
