//! Alias-method sampler for O(1) draws from a fixed discrete distribution.
//!
//! Used by the random-walk engines (node2vec transition probabilities,
//! degree-weighted negative sampling in SGNS, edge sampling in LINE).

use rand::Rng;

/// Precomputed alias table over `0..n`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from non-negative (not necessarily normalized) weights.
    ///
    /// Returns `None` if the weights are empty or sum to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !(total > 0.0) || weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return None;
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table is empty (never the case for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index according to the weight distribution.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_degenerate_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -0.5]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0; 4]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let table = AliasTable::new(&[8.0, 1.0, 1.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((p0 - 0.8).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn single_category_always_sampled() {
        let table = AliasTable::new(&[3.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let table = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }
}
