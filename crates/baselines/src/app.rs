//! APP (Zhou et al., AAAI 2017): scalable graph embedding for asymmetric
//! proximity.  Like VERSE it learns from α-decaying (PPR) random-walk
//! samples, but it keeps separate source (forward) and target (backward)
//! vectors per node, so it can represent edge direction.

use nrp_core::{
    EmbedContext, EmbedOutput, Embedder, Embedding, MethodConfig, NrpError, Result, StageClock,
};
use nrp_graph::Graph;
use nrp_linalg::DenseMatrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::walks::ppr_terminal;

/// APP hyper-parameters.
#[derive(Debug, Clone)]
pub struct AppParams {
    /// Total per-node budget `k`; forward and backward vectors get `k/2` each.
    pub dimension: usize,
    /// Random-walk decay factor `α`.
    pub alpha: f64,
    /// Positive samples drawn per node per epoch.
    pub samples_per_node: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Negative samples per positive.
    pub negatives: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AppParams {
    fn default() -> Self {
        // APP keeps two separate vector tables, so it needs a larger sampling
        // and learning-rate budget than VERSE before the forward/backward
        // tables couple; these defaults are tuned so the method is clearly
        // better than chance on the synthetic suite.
        Self {
            dimension: 128,
            alpha: 0.15,
            samples_per_node: 80,
            epochs: 5,
            negatives: 5,
            learning_rate: 0.15,
            seed: 0,
        }
    }
}

/// The APP embedder.
#[derive(Debug, Clone, Default)]
pub struct App {
    params: AppParams,
}

impl App {
    /// Creates an APP embedder.
    pub fn new(params: AppParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &AppParams {
        &self.params
    }
}

impl Embedder for App {
    fn name(&self) -> &'static str {
        "APP"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::App {
            dimension: p.dimension,
            alpha: p.alpha,
            samples_per_node: p.samples_per_node,
            epochs: p.epochs,
            negatives: p.negatives,
            learning_rate: p.learning_rate,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let p = &self.params;
        if !(p.alpha > 0.0 && p.alpha < 1.0) {
            return Err(NrpError::InvalidParameter(format!(
                "alpha must be in (0,1), got {}",
                p.alpha
            )));
        }
        if p.dimension < 2 {
            return Err(NrpError::InvalidParameter(
                "dimension must be at least 2".into(),
            ));
        }
        ctx.ensure_active()?;
        let seed = ctx.seed_or(p.seed);
        let mut clock = StageClock::start();
        let n = graph.num_nodes();
        let dim = (p.dimension / 2).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scale = 0.5 / dim as f64;
        let mut forward = DenseMatrix::from_fn(n, dim, |_, _| (rng.gen::<f64>() - 0.5) * scale);
        let mut backward = DenseMatrix::from_fn(n, dim, |_, _| (rng.gen::<f64>() - 0.5) * scale);
        clock.lap("init");
        let total_steps = (p.epochs * n * p.samples_per_node).max(1);
        let mut step = 0usize;
        for _ in 0..p.epochs {
            for u in 0..n {
                for _ in 0..p.samples_per_node {
                    if step.is_multiple_of(crate::sgns::CANCEL_CHECK_INTERVAL) {
                        ctx.ensure_active()?;
                    }
                    let lr = p.learning_rate * (1.0 - 0.9 * step as f64 / total_steps as f64);
                    step += 1;
                    let pos = ppr_terminal(graph, u as u32, p.alpha, &mut rng) as usize;
                    asymmetric_update(&mut forward, &mut backward, u, pos, 1.0, lr);
                    for _ in 0..p.negatives {
                        let neg = rng.gen_range(0..n);
                        if neg != u {
                            asymmetric_update(&mut forward, &mut backward, u, neg, 0.0, lr);
                        }
                    }
                }
            }
        }
        clock.lap("nce_training");
        let embedding = Embedding::new(forward, backward, self.name())?;
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

fn asymmetric_update(
    forward: &mut DenseMatrix,
    backward: &mut DenseMatrix,
    u: usize,
    v: usize,
    label: f64,
    lr: f64,
) {
    let dim = forward.cols();
    let mut dot = 0.0;
    for i in 0..dim {
        dot += forward.get(u, i) * backward.get(v, i);
    }
    let pred = 1.0 / (1.0 + (-dot.clamp(-30.0, 30.0)).exp());
    let g = (label - pred) * lr;
    for i in 0..dim {
        let fu = forward.get(u, i);
        let bv = backward.get(v, i);
        forward.add_to(u, i, g * bv);
        backward.add_to(v, i, g * fu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(seed: u64) -> AppParams {
        AppParams {
            dimension: 16,
            samples_per_node: 25,
            epochs: 2,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn produces_forward_backward_embedding() {
        let (g, _) = stochastic_block_model(&[20, 20], 0.25, 0.02, GraphKind::Directed, 1).unwrap();
        let e = App::new(small_params(1)).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 40);
        assert_eq!(e.half_dimension(), 8);
        assert!(e.is_finite());
    }

    #[test]
    fn scores_are_asymmetric_on_directed_graphs() {
        let (g, _) = stochastic_block_model(&[20, 20], 0.2, 0.02, GraphKind::Directed, 2).unwrap();
        let e = App::new(small_params(2)).embed_default(&g).unwrap();
        let mut differs = false;
        'outer: for u in 0..40u32 {
            for v in 0..40u32 {
                if u != v && (e.score(u, v) - e.score(v, u)).abs() > 1e-9 {
                    differs = true;
                    break 'outer;
                }
            }
        }
        assert!(differs, "APP scores should be asymmetric");
    }

    #[test]
    fn edges_score_above_non_edges_on_average() {
        let (g, _) =
            stochastic_block_model(&[25, 25], 0.3, 0.01, GraphKind::Undirected, 3).unwrap();
        let e = App::new(small_params(3)).embed_default(&g).unwrap();
        let mut edge_mean = 0.0;
        let mut count = 0usize;
        for (u, v) in g.edges() {
            edge_mean += e.score(u, v);
            count += 1;
        }
        edge_mean /= count as f64;
        let mut non_edge_mean = 0.0;
        let mut non_count = 0usize;
        for u in 0..50u32 {
            for v in 0..50u32 {
                if u != v && !g.has_arc(u, v) {
                    non_edge_mean += e.score(u, v);
                    non_count += 1;
                }
            }
        }
        non_edge_mean /= non_count as f64;
        assert!(edge_mean > non_edge_mean);
    }

    #[test]
    fn invalid_params_rejected() {
        let (g, _) = stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Directed, 4).unwrap();
        assert!(App::new(AppParams {
            alpha: 1.0,
            ..small_params(4)
        })
        .embed_default(&g)
        .is_err());
        assert!(App::new(AppParams {
            dimension: 1,
            ..small_params(4)
        })
        .embed_default(&g)
        .is_err());
    }
}
