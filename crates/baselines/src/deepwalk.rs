//! DeepWalk (Perozzi et al., KDD 2014): truncated uniform random walks fed to
//! skip-gram with negative sampling.  Produces one vector per node
//! (symmetric scoring).

use nrp_core::{EmbedContext, EmbedOutput, Embedder, Embedding, MethodConfig, Result, StageClock};
use nrp_graph::Graph;

use crate::sgns::{train_sgns, walk_frequencies, SgnsConfig};
use crate::walks::{uniform_walks_exec, window_pairs};

/// DeepWalk hyper-parameters.
#[derive(Debug, Clone)]
pub struct DeepWalkParams {
    /// Total per-node embedding budget `k` (a single `k`-dimensional vector).
    pub dimension: usize,
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Length of each walk.
    pub walk_length: usize,
    /// Skip-gram window size.
    pub window: usize,
    /// SGNS epochs.
    pub epochs: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepWalkParams {
    fn default() -> Self {
        Self {
            dimension: 128,
            walks_per_node: 10,
            walk_length: 40,
            window: 5,
            epochs: 2,
            negatives: 5,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

/// The DeepWalk embedder.
#[derive(Debug, Clone, Default)]
pub struct DeepWalk {
    params: DeepWalkParams,
}

impl DeepWalk {
    /// Creates a DeepWalk embedder.
    pub fn new(params: DeepWalkParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &DeepWalkParams {
        &self.params
    }
}

impl Embedder for DeepWalk {
    fn name(&self) -> &'static str {
        "DeepWalk"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::DeepWalk {
            dimension: p.dimension,
            walks_per_node: p.walks_per_node,
            walk_length: p.walk_length,
            window: p.window,
            epochs: p.epochs,
            negatives: p.negatives,
            learning_rate: p.learning_rate,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let p = &self.params;
        ctx.ensure_active()?;
        let seed = ctx.seed_or(p.seed);
        let threads = ctx.thread_budget();
        let mut clock = StageClock::start();
        // Per-node RNG streams keep the walks bitwise identical for any
        // thread budget.
        let walks = uniform_walks_exec(graph, p.walks_per_node, p.walk_length, seed, &ctx.exec());
        let pairs = window_pairs(&walks, p.window);
        let freq = walk_frequencies(graph.num_nodes(), &walks);
        clock.lap_parallel("walks", threads);
        ctx.ensure_active()?;
        let config = SgnsConfig {
            dimension: p.dimension.max(1),
            epochs: p.epochs,
            negatives: p.negatives,
            learning_rate: p.learning_rate,
            seed,
        };
        let model = train_sgns(graph.num_nodes(), &pairs, &freq, &config, ctx)?;
        clock.lap("sgns");
        let embedding = Embedding::symmetric(model.center, self.name());
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(seed: u64) -> DeepWalkParams {
        DeepWalkParams {
            dimension: 16,
            walks_per_node: 6,
            walk_length: 20,
            window: 4,
            epochs: 2,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn produces_symmetric_finite_embedding() {
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.25, 0.02, GraphKind::Undirected, 1).unwrap();
        let e = DeepWalk::new(small_params(1)).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 40);
        assert!(e.is_finite());
        assert_eq!(
            e.score(3, 7),
            e.score(7, 3),
            "symmetric method must score symmetrically"
        );
    }

    #[test]
    fn within_community_pairs_score_higher() {
        let (g, community) =
            stochastic_block_model(&[25, 25], 0.3, 0.01, GraphKind::Undirected, 2).unwrap();
        let e = DeepWalk::new(small_params(2)).embed_default(&g).unwrap();
        let mut within = 0.0;
        let mut across = 0.0;
        let mut count_w = 0;
        let mut count_a = 0;
        for u in 0..50u32 {
            for v in 0..50u32 {
                if u == v {
                    continue;
                }
                if community[u as usize] == community[v as usize] {
                    within += e.score(u, v);
                    count_w += 1;
                } else {
                    across += e.score(u, v);
                    count_a += 1;
                }
            }
        }
        assert!(within / count_w as f64 > across / count_a as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) =
            stochastic_block_model(&[15, 15], 0.3, 0.02, GraphKind::Undirected, 3).unwrap();
        let a = DeepWalk::new(small_params(5)).embed_default(&g).unwrap();
        let b = DeepWalk::new(small_params(5)).embed_default(&g).unwrap();
        assert_eq!(a, b);
    }
}
