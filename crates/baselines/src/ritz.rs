//! Shared Rayleigh–Ritz eigenpair selection used by the factorization-based
//! baselines (AROPE, spectral embedding).
//!
//! Given an orthonormal basis `U`, the eigendecomposition of the projected
//! matrix `T = Uᵀ A U`, and a per-eigenpair weight `s_i` (AROPE: the
//! proximity polynomial `f(λ_i)`; spectral: `λ_i` itself), this keeps the
//! `keep` pairs with the largest `|s_i|`, rotates them back through the
//! basis, and scales each direction by `|s_i|^(1/2)` with the sign folded
//! into the backward block — so `X Yᵀ ≈ Σ_i s_i u_i u_iᵀ`.

use nrp_core::{NrpError, Result};
use nrp_linalg::eig::SymmetricEigen;
use nrp_linalg::DenseMatrix;

/// Rotates the top-`keep` eigenpairs (by `|scores[i]|`) back through `basis`
/// and returns the signed-square-root-scaled `(forward, backward)` blocks.
pub(crate) fn signed_ritz_embedding(
    basis: &DenseMatrix,
    eig: &SymmetricEigen,
    scores: &[f64],
    keep: usize,
) -> Result<(DenseMatrix, DenseMatrix)> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].abs().total_cmp(&scores[a].abs()));
    let kept: Vec<usize> = order.into_iter().take(keep).collect();
    let mut rotation = DenseMatrix::zeros(eig.vectors.rows(), kept.len());
    for (new_col, &old_col) in kept.iter().enumerate() {
        for r in 0..eig.vectors.rows() {
            rotation.set(r, new_col, eig.vectors.get(r, old_col));
        }
    }
    let ritz = basis.matmul(&rotation).map_err(NrpError::Linalg)?;
    let fwd_scale: Vec<f64> = kept.iter().map(|&i| scores[i].abs().sqrt()).collect();
    let bwd_scale: Vec<f64> = kept
        .iter()
        .map(|&i| scores[i].signum() * scores[i].abs().sqrt())
        .collect();
    let mut forward = ritz.clone();
    let mut backward = ritz;
    forward.scale_cols(&fwd_scale).map_err(NrpError::Linalg)?;
    backward.scale_cols(&bwd_scale).map_err(NrpError::Linalg)?;
    Ok((forward, backward))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_linalg::eig::symmetric_eigen;

    #[test]
    fn reconstructs_signed_spectrum_at_full_rank() {
        // A = Q diag(3, -2) Qᵀ for an orthonormal Q; with basis = I and
        // scores = λ the product X Yᵀ must reconstruct A including the
        // negative eigenvalue's sign.
        let a = DenseMatrix::from_rows(&[&[0.5, 2.5], &[2.5, 0.5]]).unwrap();
        let eig = symmetric_eigen(&a).unwrap();
        let basis = DenseMatrix::identity(2);
        let (forward, backward) =
            signed_ritz_embedding(&basis, &eig, &eig.values.clone(), 2).unwrap();
        let product = forward.matmul_transpose(&backward).unwrap();
        assert!(product.sub(&a).unwrap().frobenius_norm() < 1e-9);
    }

    #[test]
    fn keeps_the_largest_magnitude_scores() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, -5.0]]).unwrap();
        let eig = symmetric_eigen(&a).unwrap();
        let basis = DenseMatrix::identity(2);
        // keep = 1 must pick λ = -5 over λ = 1.
        let (forward, backward) =
            signed_ritz_embedding(&basis, &eig, &eig.values.clone(), 1).unwrap();
        let product = forward.matmul_transpose(&backward).unwrap();
        assert!(
            (product.get(1, 1) + 5.0).abs() < 1e-9,
            "kept the wrong pair"
        );
        assert!(product.get(0, 0).abs() < 1e-9);
    }
}
