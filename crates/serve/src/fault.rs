//! Deterministic, seeded fault injection for chaos tests.
//!
//! A *failpoint* is a named site in the serving code (`conn.read`,
//! `conn.write`, `batcher.compute`) where a test can inject a fault:
//!
//! - `delay(ms)` — sleep before proceeding (queue saturation, slowloris),
//! - `io-error` — return a `ConnectionReset` I/O error (flaky socket),
//! - `panic` — panic the current thread (worker crash).
//!
//! Specs use the syntax `site=action[:p][:limit]`, semicolon-separated:
//!
//! ```text
//! conn.read=io-error:0.2;batcher.compute=panic:0.5:3
//! ```
//!
//! means: each `conn.read` hit fails with probability 0.2; the first three
//! `batcher.compute` hits panic with probability 0.5 each.
//!
//! # Determinism
//!
//! Whether a given hit triggers is a **pure function** of
//! `(seed, site, hit_index)`: a fresh ChaCha8 stream is derived per hit, so
//! the injection schedule does not depend on thread interleaving or on
//! faults at other sites.  Running the same seed against the same request
//! sequence reproduces the same schedule — the property the chaos e2e suite
//! asserts.
//!
//! # Zero cost when disabled
//!
//! The real registry only exists under the `failpoints` cargo feature.
//! Without it, [`fire`] and friends are inlineable no-ops and production
//! builds carry no registry, no RNG, and no lock.  The module deliberately
//! stays out of the lint `request_path` set: its whole purpose is to sleep,
//! error, and panic on demand.

/// The effect a failpoint applies when it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep for this many milliseconds, then proceed normally.
    Delay(u64),
    /// Fail with a `ConnectionReset` I/O error.
    IoError,
    /// Panic the current thread.
    Panic,
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::FaultAction;
    use crate::sync::lock_unpoisoned;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[derive(Debug)]
    struct Point {
        action: FaultAction,
        /// Trigger probability per eligible hit, in `[0, 1]`.
        prob: f64,
        /// Only hits with index below this are eligible to trigger.
        limit: u64,
        /// Hits observed so far (the next hit gets this index).
        hits: u64,
        /// Hits that actually triggered.
        triggered: u64,
    }

    #[derive(Debug, Default)]
    struct Registry {
        seed: u64,
        points: HashMap<String, Point>,
    }

    static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

    /// FNV-1a, so the per-site stream offset is stable across runs.
    fn site_hash(site: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in site.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    /// Pure per-hit decision: derives a fresh ChaCha8 stream from
    /// `(seed, site, hit_index)` so the outcome is independent of thread
    /// interleaving and of other sites.
    fn decide(seed: u64, site: &str, hit: u64, prob: f64, limit: u64) -> bool {
        if hit >= limit {
            return false;
        }
        if prob >= 1.0 {
            return true;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed ^ site_hash(site) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        rng.gen_bool(prob)
    }

    fn parse_action(text: &str) -> Result<FaultAction, String> {
        if let Some(ms) = text
            .strip_prefix("delay(")
            .and_then(|t| t.strip_suffix(')'))
        {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad delay milliseconds: {ms:?}"))?;
            return Ok(FaultAction::Delay(ms));
        }
        match text {
            "io-error" => Ok(FaultAction::IoError),
            "panic" => Ok(FaultAction::Panic),
            other => Err(format!(
                "unknown action {other:?} (expected delay(ms), io-error, or panic)"
            )),
        }
    }

    fn parse_point(entry: &str) -> Result<(String, Point), String> {
        let (site, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("missing '=' in failpoint {entry:?}"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("empty site in failpoint {entry:?}"));
        }
        let mut parts = rest.split(':');
        let action = parse_action(parts.next().unwrap_or("").trim())?;
        let mut prob = 1.0f64;
        let mut limit = u64::MAX;
        if let Some(p) = parts.next() {
            prob = p
                .trim()
                .parse()
                .map_err(|_| format!("bad probability {p:?}"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("probability {prob} out of [0, 1]"));
            }
        }
        if let Some(l) = parts.next() {
            limit = l.trim().parse().map_err(|_| format!("bad limit {l:?}"))?;
        }
        if let Some(extra) = parts.next() {
            return Err(format!("trailing garbage {extra:?} in failpoint {entry:?}"));
        }
        Ok((
            site.to_string(),
            Point {
                action,
                prob,
                limit,
                hits: 0,
                triggered: 0,
            },
        ))
    }

    /// Installs the failpoint spec `spec` with the given schedule seed,
    /// replacing any previous configuration.
    pub fn configure(spec: &str, seed: u64) -> Result<(), String> {
        let mut reg = Registry {
            seed,
            points: HashMap::new(),
        };
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (site, point) = parse_point(entry)?;
            reg.points.insert(site, point);
        }
        *lock_unpoisoned(&REGISTRY) = Some(reg);
        Ok(())
    }

    /// Removes every configured failpoint.
    pub fn clear() {
        *lock_unpoisoned(&REGISTRY) = None;
    }

    /// Records a hit at `site` and returns the action to apply, if the hit
    /// triggers.
    pub fn evaluate(site: &str) -> Option<FaultAction> {
        let mut guard = lock_unpoisoned(&REGISTRY);
        let reg = guard.as_mut()?;
        let seed = reg.seed;
        let point = reg.points.get_mut(site)?;
        let hit = point.hits;
        point.hits += 1;
        if decide(seed, site, hit, point.prob, point.limit) {
            point.triggered += 1;
            Some(point.action)
        } else {
            None
        }
    }

    /// How many hits at `site` have triggered.
    pub fn triggered(site: &str) -> u64 {
        lock_unpoisoned(&REGISTRY)
            .as_ref()
            .and_then(|reg| reg.points.get(site))
            .map_or(0, |p| p.triggered)
    }

    /// Records a hit at `site` and applies its action: sleeps on `Delay`,
    /// returns `Err` on `IoError`, panics on `Panic`.
    pub fn fire(site: &str) -> std::io::Result<()> {
        // The action runs strictly outside the registry lock: a delay must
        // never sleep under a mutex and a panic must never poison one.
        match evaluate(site) {
            None => Ok(()),
            Some(FaultAction::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            Some(FaultAction::IoError) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                format!("failpoint io-error at {site}"),
            )),
            // nrp-lint: allow(P004) — injecting panics is this action's purpose; it exists
            // only in `failpoints` builds and the dispatcher catches it per-source
            Some(FaultAction::Panic) => panic!("failpoint panic at {site}"),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// Serializes registry-touching tests: the registry is process-global.
        static TEST_GATE: Mutex<()> = Mutex::new(());

        #[test]
        fn spec_parsing_accepts_the_documented_grammar() {
            let (site, p) = parse_point("conn.read=io-error:0.25:7").unwrap();
            assert_eq!(site, "conn.read");
            assert_eq!(p.action, FaultAction::IoError);
            assert!((p.prob - 0.25).abs() < 1e-12);
            assert_eq!(p.limit, 7);

            let (_, p) = parse_point("batcher.compute=delay(40)").unwrap();
            assert_eq!(p.action, FaultAction::Delay(40));
            assert!(p.prob >= 1.0);
            assert_eq!(p.limit, u64::MAX);

            let (_, p) = parse_point("x=panic:1.0").unwrap();
            assert_eq!(p.action, FaultAction::Panic);
        }

        #[test]
        fn spec_parsing_rejects_malformed_entries() {
            for bad in [
                "no-equals",
                "=panic",
                "s=explode",
                "s=delay(abc)",
                "s=panic:1.5",
                "s=panic:0.5:x",
                "s=panic:0.5:1:extra",
            ] {
                assert!(parse_point(bad).is_err(), "accepted {bad:?}");
            }
        }

        #[test]
        fn same_seed_reproduces_the_same_schedule() {
            let _gate = lock_unpoisoned(&TEST_GATE);
            let run = |seed: u64| -> Vec<bool> {
                configure("site.a=io-error:0.3", seed).unwrap();
                let schedule = (0..64).map(|_| evaluate("site.a").is_some()).collect();
                clear();
                schedule
            };
            let first = run(7);
            assert_eq!(first, run(7), "same seed must replay identically");
            assert!(
                first.iter().any(|&t| t),
                "p=0.3 over 64 hits should trigger"
            );
            assert!(!first.iter().all(|&t| t), "p=0.3 should also skip some");
            assert_ne!(first, run(8), "different seed should differ");
        }

        #[test]
        fn decisions_are_per_hit_index_not_per_arrival_order() {
            // The decision is a pure function of (seed, site, hit): the same
            // index always answers the same, whatever happened in between.
            for hit in 0..32 {
                let a = decide(99, "conn.write", hit, 0.4, u64::MAX);
                let b = decide(99, "conn.write", hit, 0.4, u64::MAX);
                assert_eq!(a, b);
            }
        }

        #[test]
        fn limit_bounds_eligible_hits() {
            let _gate = lock_unpoisoned(&TEST_GATE);
            configure("site.b=panic:1.0:2", 1).unwrap();
            assert_eq!(evaluate("site.b"), Some(FaultAction::Panic));
            assert_eq!(evaluate("site.b"), Some(FaultAction::Panic));
            assert_eq!(evaluate("site.b"), None, "third hit exceeds limit");
            assert_eq!(triggered("site.b"), 2);
            clear();
        }

        #[test]
        fn unconfigured_sites_never_fire() {
            let _gate = lock_unpoisoned(&TEST_GATE);
            configure("site.c=panic", 1).unwrap();
            assert_eq!(evaluate("site.other"), None);
            clear();
            assert_eq!(evaluate("site.c"), None, "cleared registry is inert");
            assert!(fire("site.c").is_ok());
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{clear, configure, evaluate, fire, triggered};

/// Installs the failpoint spec `spec` with the given schedule seed,
/// replacing any previous configuration.  No-op without the `failpoints`
/// feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn configure(_spec: &str, _seed: u64) -> Result<(), String> {
    Ok(())
}

/// Removes every configured failpoint.  No-op without the `failpoints`
/// feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn clear() {}

/// Records a hit at `site` and returns the action to apply, if the hit
/// triggers.  Always `None` without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn evaluate(_site: &str) -> Option<FaultAction> {
    None
}

/// How many hits at `site` have triggered.  Always zero without the
/// `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn triggered(_site: &str) -> u64 {
    0
}

/// Records a hit at `site` and applies its action: sleeps on `Delay`,
/// returns `Err` on `IoError`, panics on `Panic`.  An inlineable
/// `Ok(())` without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn fire(_site: &str) -> std::io::Result<()> {
    Ok(())
}
