//! Blocking HTTP clients for the load generator, the CI smoke checks and
//! the end-to-end tests.
//!
//! [`HttpClient`] is the minimal keep-alive client: one persistent
//! connection, transparent reconnect when the server dropped it between
//! requests.  [`ResilientClient`] layers the overload-era policies on top:
//! jittered exponential backoff with a retry budget (seeded, so chaos runs
//! replay identically), `Retry-After` honoured on `503`, and a circuit
//! breaker that fails fast while the server sheds.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use nrp_obs::clock;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::http::{read_client_response, ClientResponse, HttpLimits};

/// A persistent connection to one server.
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// A client for `addr`; connects lazily on the first request.
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, stream: None }
    }

    fn connect(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        self.stream.as_mut().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection was not established",
            )
        })
    }

    /// Drops the cached keep-alive connection; the next request dials
    /// fresh.  Because the close is client-initiated, the *server's*
    /// listening port stays immediately rebindable (no server-side
    /// `TIME_WAIT`), which is what lets one client session span a server
    /// restart on the same address.
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    /// Issues `GET {target}` on the persistent connection and returns
    /// `(status, body)`.  Reconnects once if the server closed the
    /// keep-alive connection between requests.
    pub fn get(&mut self, target: &str) -> std::io::Result<(u16, Vec<u8>)> {
        self.get_full(target, &[]).map(|r| (r.status, r.body))
    }

    /// Like [`HttpClient::get`], but returns the full [`ClientResponse`]
    /// (status, body, `Retry-After`) and sends `extra_headers` as
    /// `name: value` lines.
    pub fn get_full(
        &mut self,
        target: &str,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        match self.try_get(target, extra_headers) {
            Ok(answer) => Ok(answer),
            Err(_) => {
                // Stale keep-alive connection (server restarted or timed the
                // connection out): reconnect and retry once.  `try_get`
                // evicted the dead socket already, so this attempt dials
                // fresh.
                self.try_get(target, extra_headers)
            }
        }
    }

    fn try_get(
        &mut self,
        target: &str,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        // Any failure from here on evicts the stream: a connection that
        // failed a write is just as dead as one that failed a read, and
        // keeping it would make the retry in `get_full` fail the same way.
        let result = (|| {
            let reader = self.connect()?;
            let mut request = format!("GET {target} HTTP/1.1\r\nhost: nrp-serve\r\n");
            for (name, value) in extra_headers {
                request.push_str(name);
                request.push_str(": ");
                request.push_str(value);
                request.push_str("\r\n");
            }
            request.push_str("\r\n");
            reader.get_mut().write_all(request.as_bytes())?;
            read_client_response(reader, &HttpLimits::default()).map_err(|error| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, error.to_string())
            })
        })();
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// `get` + JSON parse, asserting a 200 status.  Used where the caller
    /// wants a hard failure on any non-success answer.
    pub fn get_json(&mut self, target: &str) -> Result<serde::Value, String> {
        let (status, body) = self.get(target).map_err(|e| format!("GET {target}: {e}"))?;
        let text = String::from_utf8(body).map_err(|e| format!("GET {target}: {e}"))?;
        if status != 200 {
            return Err(format!("GET {target}: status {status}: {text}"));
        }
        serde_json::from_str(&text).map_err(|e| format!("GET {target}: bad JSON: {e}"))
    }
}

/// One-shot convenience: connect, `GET target`, parse JSON, close.
pub fn get_json_once(addr: SocketAddr, target: &str) -> Result<serde::Value, String> {
    HttpClient::new(addr).get_json(target)
}

/// One-shot plain-text GET (for `/metrics` and `/debug/traces`, whose
/// bodies are not JSON).  Asserts a 200 status.
pub fn get_text_once(addr: SocketAddr, target: &str) -> Result<String, String> {
    let (status, body) = HttpClient::new(addr)
        .get(target)
        .map_err(|e| format!("GET {target}: {e}"))?;
    let text = String::from_utf8(body).map_err(|e| format!("GET {target}: {e}"))?;
    if status != 200 {
        return Err(format!("GET {target}: status {status}: {text}"));
    }
    Ok(text)
}

/// Backoff and retry-budget knobs for [`ResilientClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try once).
    pub max_retries: u32,
    /// Backoff cap for attempt `n` is `base_delay_ms << n`.
    pub base_delay_ms: u64,
    /// Upper bound on any single backoff sleep.
    pub max_delay_ms: u64,
    /// Total milliseconds the client may spend *sleeping* across all
    /// retries of one request; once spent, the next failure is final.
    pub budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_delay_ms: 10,
            max_delay_ms: 1_000,
            budget_ms: 5_000,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `attempt` (0-based): a
    /// uniform draw from `[0, min(base << attempt, max)]` ("full jitter"),
    /// so a retrying fleet decorrelates instead of stampeding in lockstep.
    pub fn backoff_ms(&self, attempt: u32, rng: &mut ChaCha8Rng) -> u64 {
        let cap = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(32))
            .min(self.max_delay_ms);
        if cap == 0 {
            return 0;
        }
        rng.gen_range(0..cap + 1)
    }
}

/// A consecutive-failure circuit breaker: closed → open after `threshold`
/// straight failures, half-open (one probe allowed) after `open_ms` of
/// cool-down, closed again on a successful probe.
///
/// Clock-free like [`crate::degrade::DegradeController`]: callers pass
/// `now_ms` so tests drive transitions without sleeping.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    open_ms: u64,
    consecutive_failures: u32,
    /// When the breaker opened; `None` while closed.
    opened_at: Option<u64>,
    /// A half-open probe is in flight.
    probing: bool,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// cools down for `open_ms` before allowing a probe.  `threshold == 0`
    /// disables the breaker (always allows).
    pub fn new(threshold: u32, open_ms: u64) -> Self {
        Self {
            threshold,
            open_ms,
            consecutive_failures: 0,
            opened_at: None,
            probing: false,
        }
    }

    /// Whether a request may go out at `now_ms`.  While open, returns
    /// `true` exactly once per cool-down expiry (the half-open probe).
    pub fn allow(&mut self, now_ms: u64) -> bool {
        if self.threshold == 0 {
            return true;
        }
        match self.opened_at {
            None => true,
            Some(opened) => {
                if self.probing {
                    return false; // A probe is already in flight.
                }
                if now_ms.saturating_sub(opened) >= self.open_ms {
                    self.probing = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful request: closes the breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.opened_at = None;
        self.probing = false;
    }

    /// Records a failed request at `now_ms`: re-opens after a failed probe,
    /// opens after `threshold` straight failures.
    pub fn record_failure(&mut self, now_ms: u64) {
        if self.threshold == 0 {
            return;
        }
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.probing || self.consecutive_failures >= self.threshold {
            self.opened_at = Some(now_ms);
            self.probing = false;
        }
    }

    /// `"closed"`, `"open"`, or `"half-open"` at `now_ms` (no state change).
    pub fn state(&self, now_ms: u64) -> &'static str {
        match self.opened_at {
            None => "closed",
            Some(opened) => {
                if self.probing || now_ms.saturating_sub(opened) >= self.open_ms {
                    "half-open"
                } else {
                    "open"
                }
            }
        }
    }
}

/// Cumulative counters of one [`ResilientClient`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilientStats {
    /// Requests that ultimately succeeded (2xx).
    pub ok: u64,
    /// Requests that ultimately failed after exhausting retries/budget.
    pub failed: u64,
    /// Individual retry attempts performed.
    pub retries: u64,
    /// Requests rejected locally by the open circuit breaker.
    pub breaker_rejections: u64,
}

/// [`HttpClient`] wrapped in retry, backoff, and circuit-breaker policy.
///
/// Seeded: two clients built with the same seed replay the same jitter
/// sequence, which keeps chaos e2e runs reproducible.
pub struct ResilientClient {
    client: HttpClient,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    rng: ChaCha8Rng,
    epoch: Instant,
    stats: ResilientStats,
}

impl ResilientClient {
    /// A resilient client for `addr` with the given policy and breaker,
    /// drawing jitter from a ChaCha8 stream seeded with `seed`.
    pub fn new(addr: SocketAddr, policy: RetryPolicy, breaker: CircuitBreaker, seed: u64) -> Self {
        Self {
            client: HttpClient::new(addr),
            policy,
            breaker,
            rng: ChaCha8Rng::seed_from_u64(seed),
            epoch: clock::now(),
            stats: ResilientStats::default(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// `GET target` with retries.  Transport errors and `429`/`500`/`503`/
    /// `504` answers are retried (GETs are idempotent here) with full-jitter
    /// exponential backoff, sleeping at least the server's `Retry-After`
    /// when one is sent, until the policy's retry count or sleep budget is
    /// exhausted.  Returns the final response (success or not) — callers
    /// decide what a terminal non-200 means — or `Err` on transport-level
    /// failure / open breaker.
    pub fn get(&mut self, target: &str) -> Result<ClientResponse, String> {
        self.get_with_headers(target, &[])
    }

    /// [`ResilientClient::get`] with extra request headers (e.g.
    /// `x-deadline-ms`).
    pub fn get_with_headers(
        &mut self,
        target: &str,
        extra_headers: &[(&str, &str)],
    ) -> Result<ClientResponse, String> {
        let mut slept_ms: u64 = 0;
        let mut attempt: u32 = 0;
        loop {
            if !self.breaker.allow(self.now_ms()) {
                self.stats.breaker_rejections += 1;
                return Err(format!("GET {target}: circuit breaker is open"));
            }
            let outcome = self.client.get_full(target, extra_headers);
            let (retryable, retry_after) = match &outcome {
                Ok(response) => (
                    matches!(response.status, 429 | 500 | 503 | 504),
                    response.retry_after,
                ),
                Err(_) => (true, None),
            };
            if !retryable {
                self.breaker.record_success();
                self.stats.ok += 1;
                return outcome.map_err(|e| format!("GET {target}: {e}"));
            }
            self.breaker.record_failure(self.now_ms());
            if attempt >= self.policy.max_retries || slept_ms >= self.policy.budget_ms {
                self.stats.failed += 1;
                return match outcome {
                    Ok(response) => Ok(response), // Terminal over-capacity answer.
                    Err(e) => Err(format!("GET {target}: {e}")),
                };
            }
            let mut delay = self.policy.backoff_ms(attempt, &mut self.rng);
            if let Some(secs) = retry_after {
                // The server's explicit hint dominates the local schedule.
                delay = delay.max(secs.saturating_mul(1_000));
            }
            let delay = delay.min(self.policy.budget_ms.saturating_sub(slept_ms));
            if delay > 0 {
                std::thread::sleep(Duration::from_millis(delay));
            }
            slept_ms += delay;
            self.stats.retries += 1;
            attempt += 1;
        }
    }

    /// The client's cumulative counters.
    pub fn stats(&self) -> ResilientStats {
        self.stats
    }

    /// The breaker's current state name (for test assertions and reports).
    pub fn breaker_state(&self) -> &'static str {
        self.breaker.state(self.now_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy {
            max_retries: 6,
            base_delay_ms: 8,
            max_delay_ms: 100,
            budget_ms: 10_000,
        };
        let draws = |seed: u64| -> Vec<u64> {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..8).map(|a| policy.backoff_ms(a, &mut rng)).collect()
        };
        assert_eq!(draws(5), draws(5), "same seed, same jitter");
        for (attempt, &d) in draws(5).iter().enumerate() {
            let cap = (8u64 << attempt).min(100);
            assert!(d <= cap, "attempt {attempt}: {d} > cap {cap}");
        }
    }

    #[test]
    fn breaker_opens_probes_and_recloses() {
        let mut b = CircuitBreaker::new(3, 100);
        assert_eq!(b.state(0), "closed");
        for t in [0, 1] {
            assert!(b.allow(t));
            b.record_failure(t);
        }
        assert!(b.allow(2), "two failures stay under the threshold");
        b.record_failure(2);
        assert_eq!(b.state(3), "open");
        assert!(!b.allow(50), "open: fail fast");
        assert!(b.allow(150), "cool-down over: one probe allowed");
        assert!(!b.allow(151), "only one probe at a time");
        b.record_failure(151);
        assert!(!b.allow(200), "failed probe re-opens");
        assert!(b.allow(260));
        b.record_success();
        assert_eq!(b.state(261), "closed");
        assert!(b.allow(261));
    }

    #[test]
    fn breaker_success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, 100);
        b.record_failure(0);
        b.record_success();
        b.record_failure(1);
        assert!(b.allow(2), "streak was broken, still closed");
        b.record_failure(2);
        assert!(!b.allow(3), "two consecutive failures open it");
    }

    #[test]
    fn breaker_threshold_zero_is_disabled() {
        let mut b = CircuitBreaker::new(0, 100);
        for t in 0..10 {
            b.record_failure(t);
            assert!(b.allow(t));
        }
        assert_eq!(b.state(10), "closed");
    }
}
