//! A minimal blocking HTTP client for the load generator, the CI smoke
//! checks and the end-to-end tests.  Keep-alive by default: one
//! [`HttpClient`] holds one persistent connection, mirroring how a real
//! load generator amortises connection setup.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{read_response, HttpLimits};

/// A persistent connection to one server.
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// A client for `addr`; connects lazily on the first request.
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, stream: None }
    }

    fn connect(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        self.stream.as_mut().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection was not established",
            )
        })
    }

    /// Issues `GET {target}` on the persistent connection and returns
    /// `(status, body)`.  Reconnects once if the server closed the
    /// keep-alive connection between requests.
    pub fn get(&mut self, target: &str) -> std::io::Result<(u16, Vec<u8>)> {
        match self.try_get(target) {
            Ok(answer) => Ok(answer),
            Err(_) => {
                // Stale keep-alive connection (server restarted or timed the
                // connection out): reconnect and retry once.
                self.stream = None;
                self.try_get(target)
            }
        }
    }

    fn try_get(&mut self, target: &str) -> std::io::Result<(u16, Vec<u8>)> {
        let reader = self.connect()?;
        let request = format!("GET {target} HTTP/1.1\r\nhost: nrp-serve\r\n\r\n");
        reader.get_mut().write_all(request.as_bytes())?;
        match read_response(reader, &HttpLimits::default()) {
            Ok(answer) => Ok(answer),
            Err(error) => {
                self.stream = None;
                Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    error.to_string(),
                ))
            }
        }
    }

    /// `get` + JSON parse, asserting a 200 status.  Used where the caller
    /// wants a hard failure on any non-success answer.
    pub fn get_json(&mut self, target: &str) -> Result<serde::Value, String> {
        let (status, body) = self.get(target).map_err(|e| format!("GET {target}: {e}"))?;
        let text = String::from_utf8(body).map_err(|e| format!("GET {target}: {e}"))?;
        if status != 200 {
            return Err(format!("GET {target}: status {status}: {text}"));
        }
        serde_json::from_str(&text).map_err(|e| format!("GET {target}: bad JSON: {e}"))
    }
}

/// One-shot convenience: connect, `GET target`, parse JSON, close.
pub fn get_json_once(addr: SocketAddr, target: &str) -> Result<serde::Value, String> {
    HttpClient::new(addr).get_json(target)
}
