//! Graceful degradation under sustained overload.
//!
//! The serving layer's response to *transient* overload is shedding (503)
//! and deadlines (504).  When pressure is *sustained*, shedding alone wastes
//! work: every shed request paid admission, parsing and a queue probe for
//! nothing.  This module tracks shed/timeout pressure in a sliding window
//! and steps the server down a cheaper ladder instead:
//!
//! 1. [`DegradeLevel::Normal`] — serve everything as asked.
//! 2. [`DegradeLevel::Degraded`] — downgrade `/ppr?mode=exact` to forward
//!    push.  Push is the paper's tunable accuracy/latency knob: orders of
//!    magnitude cheaper per source, and the answer is still **bitwise
//!    identical** to a direct `forward_push_with_policy` call (the
//!    downgraded request takes the ordinary push path end to end).
//! 3. [`DegradeLevel::CacheOnly`] — only answers already in the hot-source
//!    cache are served; misses shed with 503 + `Retry-After`.
//!
//! The controller is deliberately clock-free inside: every method takes the
//! caller's `now_ms` (milliseconds since an epoch the caller picks), so
//! tests drive transitions with synthetic timestamps and never sleep.
//!
//! State is a few atomics — recording pressure on the request path costs no
//! lock, and the controller cannot participate in any lock-order cycle.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// How much of the service ladder is currently switched off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// Full service.
    Normal = 0,
    /// Exact-mode `/ppr` downgrades to forward push.
    Degraded = 1,
    /// Only cache hits are served; misses shed.
    CacheOnly = 2,
}

impl DegradeLevel {
    /// The `/healthz` / `/stats` wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeLevel::Normal => "normal",
            DegradeLevel::Degraded => "degraded",
            DegradeLevel::CacheOnly => "cache-only",
        }
    }

    fn from_u8(raw: u8) -> Self {
        match raw {
            0 => DegradeLevel::Normal,
            1 => DegradeLevel::Degraded,
            _ => DegradeLevel::CacheOnly,
        }
    }
}

/// Sliding-window pressure tracker driving the [`DegradeLevel`] ladder.
///
/// Escalation: when the events recorded in the current + previous window
/// reach `threshold`, the level steps up one rung and the window counts
/// reset (each rung must be earned by fresh pressure).  Recovery: when
/// `recover_ms` elapses with no pressure event, the level steps down one
/// rung per quiet period.  `threshold == 0` disables the controller.
#[derive(Debug)]
pub struct DegradeController {
    threshold: u64,
    window_ms: u64,
    recover_ms: u64,
    level: AtomicU8,
    /// Start of the current bucket, ms.
    bucket_start: AtomicU64,
    /// Pressure events in the current bucket.
    current: AtomicU64,
    /// Pressure events in the previous (already rotated) bucket.
    previous: AtomicU64,
    /// Timestamp of the most recent pressure event, ms.
    last_event: AtomicU64,
    /// Cumulative escalations (for `/stats` and `/metrics`).
    escalations: AtomicU64,
    /// Cumulative recovery rungs stepped down (for `/stats` and `/metrics`).
    recoveries: AtomicU64,
}

impl DegradeController {
    /// A controller that escalates after `threshold` pressure events within
    /// a `window_ms` sliding window and recovers one level per `recover_ms`
    /// of quiet.  `threshold == 0` pins the level to `Normal`.
    pub fn new(threshold: u64, window_ms: u64, recover_ms: u64) -> Self {
        Self {
            threshold,
            window_ms: window_ms.max(1),
            recover_ms: recover_ms.max(1),
            level: AtomicU8::new(DegradeLevel::Normal as u8),
            bucket_start: AtomicU64::new(0),
            current: AtomicU64::new(0),
            previous: AtomicU64::new(0),
            last_event: AtomicU64::new(0),
            escalations: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    /// Records one pressure event (a shed or a deadline expiry) at
    /// `now_ms`, escalating if the window total reaches the threshold.
    pub fn record_pressure(&self, now_ms: u64) {
        if self.threshold == 0 {
            return;
        }
        self.rotate(now_ms);
        self.last_event.fetch_max(now_ms, Ordering::Relaxed);
        let in_window = self.current.fetch_add(1, Ordering::Relaxed)
            + 1
            + self.previous.load(Ordering::Relaxed);
        if in_window >= self.threshold {
            // Each rung is earned by a fresh window of pressure: reset the
            // counts so the next escalation needs `threshold` new events.
            self.current.store(0, Ordering::Relaxed);
            self.previous.store(0, Ordering::Relaxed);
            let level = self.level.load(Ordering::Relaxed);
            if level < DegradeLevel::CacheOnly as u8
                && self
                    .level
                    .compare_exchange(level, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                self.escalations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The level in effect at `now_ms`, applying lazy recovery: one rung
    /// down per `recover_ms` elapsed since the last pressure event.
    pub fn level(&self, now_ms: u64) -> DegradeLevel {
        let level = self.level.load(Ordering::Relaxed);
        if level == DegradeLevel::Normal as u8 {
            return DegradeLevel::Normal;
        }
        let quiet = now_ms.saturating_sub(self.last_event.load(Ordering::Relaxed));
        let rungs_down = (quiet / self.recover_ms).min(level as u64) as u8;
        if rungs_down > 0 {
            // Best-effort: a concurrent pressure event wins the race and
            // keeps the level — exactly the conservative outcome we want.
            if self
                .level
                .compare_exchange(
                    level,
                    level - rungs_down,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                self.recoveries
                    .fetch_add(rungs_down as u64, Ordering::Relaxed);
            }
            // Recovery consumes the quiet time: the next rung needs a fresh
            // quiet period (otherwise one long lull would re-trigger).
            self.last_event.fetch_max(now_ms, Ordering::Relaxed);
        }
        DegradeLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Pins the level (operator override and deterministic tests).
    pub fn force(&self, level: DegradeLevel, now_ms: u64) {
        self.level.store(level as u8, Ordering::Relaxed);
        self.last_event.store(now_ms, Ordering::Relaxed);
        self.current.store(0, Ordering::Relaxed);
        self.previous.store(0, Ordering::Relaxed);
    }

    /// Cumulative escalations (each one-rung step up).
    pub fn escalations(&self) -> u64 {
        self.escalations.load(Ordering::Relaxed)
    }

    /// Cumulative recovery rungs stepped down (lazy recovery only; operator
    /// [`DegradeController::force`] calls are not counted).
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Rotates the window buckets so `current + previous` approximates the
    /// events of the trailing `window_ms`.
    fn rotate(&self, now_ms: u64) {
        let start = self.bucket_start.load(Ordering::Relaxed);
        let elapsed = now_ms.saturating_sub(start);
        if elapsed < self.window_ms {
            return;
        }
        if self
            .bucket_start
            .compare_exchange(start, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // Another thread rotated.
        }
        let rolled = self.current.swap(0, Ordering::Relaxed);
        // A gap longer than two windows means the previous bucket's events
        // are stale too.
        self.previous.store(
            if elapsed >= 2 * self.window_ms {
                0
            } else {
                rolled
            },
            Ordering::Relaxed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_normal_below_threshold() {
        let c = DegradeController::new(5, 1_000, 2_000);
        for t in 0..4 {
            c.record_pressure(t * 10);
        }
        assert_eq!(c.level(50), DegradeLevel::Normal);
    }

    #[test]
    fn escalates_one_rung_per_window_of_pressure() {
        let c = DegradeController::new(3, 1_000, 10_000);
        for t in 0..3 {
            c.record_pressure(t);
        }
        assert_eq!(c.level(3), DegradeLevel::Degraded);
        assert_eq!(c.escalations(), 1);
        // The counts reset on escalation: two more events are not enough.
        c.record_pressure(4);
        c.record_pressure(5);
        assert_eq!(c.level(6), DegradeLevel::Degraded);
        c.record_pressure(6);
        assert_eq!(c.level(7), DegradeLevel::CacheOnly);
        assert_eq!(c.escalations(), 2);
        // The ladder tops out at cache-only.
        for t in 10..20 {
            c.record_pressure(t);
        }
        assert_eq!(c.level(20), DegradeLevel::CacheOnly);
    }

    #[test]
    fn recovers_one_rung_per_quiet_period() {
        let c = DegradeController::new(2, 1_000, 2_000);
        for t in [0, 1, 2, 3] {
            c.record_pressure(t);
        }
        assert_eq!(c.level(4), DegradeLevel::CacheOnly);
        // Not quiet for long enough yet.
        assert_eq!(c.level(1_500), DegradeLevel::CacheOnly);
        // One recover_ms of quiet: down one rung, not two.
        assert_eq!(c.level(2_500), DegradeLevel::Degraded);
        // The quiet clock restarts after a recovery step.
        assert_eq!(c.level(3_000), DegradeLevel::Degraded);
        assert_eq!(c.level(4_600), DegradeLevel::Normal);
        assert_eq!(c.recoveries(), 2, "one rung per quiet period, twice");
    }

    #[test]
    fn a_long_lull_recovers_all_the_way() {
        let c = DegradeController::new(1, 100, 500);
        c.record_pressure(0);
        c.record_pressure(1);
        assert_eq!(c.level(2), DegradeLevel::CacheOnly);
        assert_eq!(c.level(10_000), DegradeLevel::Normal);
    }

    #[test]
    fn stale_windows_do_not_accumulate() {
        let c = DegradeController::new(3, 100, 1_000);
        // Two events, then a long gap, then two more: never three in any
        // trailing window, so never degraded.
        c.record_pressure(0);
        c.record_pressure(1);
        c.record_pressure(5_000);
        c.record_pressure(5_001);
        assert_eq!(c.level(5_002), DegradeLevel::Normal);
    }

    #[test]
    fn threshold_zero_disables_the_controller() {
        let c = DegradeController::new(0, 100, 100);
        for t in 0..100 {
            c.record_pressure(t);
        }
        assert_eq!(c.level(100), DegradeLevel::Normal);
        assert_eq!(c.escalations(), 0);
    }

    #[test]
    fn force_pins_the_level() {
        let c = DegradeController::new(2, 1_000, 1_000);
        c.force(DegradeLevel::CacheOnly, 0);
        assert_eq!(c.level(500), DegradeLevel::CacheOnly);
        assert_eq!(
            c.level(1_500),
            DegradeLevel::Degraded,
            "recovery still applies"
        );
        c.force(DegradeLevel::Normal, 2_000);
        assert_eq!(c.level(2_000), DegradeLevel::Normal);
    }
}
