//! A self-contained graph + embedding fixture, shared by the serve tests,
//! the CI smoke job and the `bench_serve` load generator — all of which
//! need a realistic-but-small workload with no data files.

use nrp_core::{Embedding, Nrp, NrpParams};
use nrp_graph::{generators, Graph, GraphKind};

/// Builds a Barabási–Albert graph of `nodes` nodes (power-law degrees, so
/// hot-source caching has something to be hot about) and trains a small NRP
/// embedding over it.  Fully deterministic in `seed`.
pub fn fixture(nodes: usize, seed: u64) -> (Graph, Embedding) {
    let graph = generators::barabasi_albert(nodes, 3, GraphKind::Directed, seed)
        .expect("fixture graph generates");
    let params = NrpParams::builder()
        .dimension(16)
        .num_hops(4)
        .reweight_epochs(3)
        .seed(seed)
        .build()
        .expect("fixture params validate");
    let (embedding, _weights) = Nrp::new(params)
        .embed_with_weights(&graph)
        .expect("fixture embedding trains");
    (graph, embedding)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic() {
        let (g1, e1) = fixture(120, 7);
        let (g2, e2) = fixture(120, 7);
        assert_eq!(g1.num_nodes(), 120);
        assert_eq!(g1.num_arcs(), g2.num_arcs());
        assert_eq!(e1.dimension(), 16);
        for u in [0u32, 5, 60] {
            for v in [1u32, 40, 119] {
                assert_eq!(e1.score(u, v).to_bits(), e2.score(u, v).to_bits());
            }
        }
    }
}
