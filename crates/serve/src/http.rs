//! Hand-rolled HTTP/1.1 message layer over `std::io`.
//!
//! The workspace vendors every external dependency, so the serving layer
//! speaks HTTP the same way: a small, defensive parser on top of
//! [`BufRead`] with explicit size limits, no allocations proportional to
//! attacker-controlled numbers, and clean error values for every malformed
//! input (the accept loop must never panic on wire data).
//!
//! Supported surface: `GET`/`POST`/`HEAD` request lines, `HTTP/1.0` and
//! `HTTP/1.1`, `Content-Length` bodies (no chunked transfer coding),
//! keep-alive with pipelining (the parser reads exactly one message per
//! call, leaving the next pipelined request in the buffer).

use std::fmt;
use std::io::{BufRead, Write};

/// Size and count limits applied while parsing one request.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Maximum request-line length in bytes (default 8 KiB).
    pub max_request_line: usize,
    /// Maximum number of header fields (default 64).
    pub max_headers: usize,
    /// Maximum length of one header line in bytes (default 8 KiB).
    pub max_header_line: usize,
    /// Maximum `Content-Length` accepted (default 1 MiB).
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_request_line: 8 * 1024,
            max_headers: 64,
            max_header_line: 8 * 1024,
            max_body: 1024 * 1024,
        }
    }
}

/// Everything that can go wrong reading one HTTP message.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically malformed request line, header or body framing.
    BadRequest(String),
    /// The request line or a header exceeds the configured limits.
    TooLarge(&'static str),
    /// `Content-Length` exceeds [`HttpLimits::max_body`].
    BodyTooLarge {
        /// The advertised length.
        length: usize,
        /// The configured cap.
        limit: usize,
    },
    /// A method this server does not implement.
    UnsupportedMethod(String),
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion(String),
    /// The peer closed the connection in the middle of a message.
    UnexpectedEof,
    /// The socket timed out with no bytes of a new message read yet — the
    /// connection is merely idle, not broken (keep-alive loops poll on it).
    Idle,
    /// Transport error.
    Io(std::io::Error),
}

impl HttpError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge(_) => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnsupportedMethod(_) => 405,
            HttpError::UnsupportedVersion(_) => 505,
            HttpError::UnexpectedEof | HttpError::Idle | HttpError::Io(_) => 400,
        }
    }

    /// True if a response can still be written on the connection (the
    /// request was framed well enough to answer; transport-level failures
    /// cannot be answered).
    pub fn respondable(&self) -> bool {
        !matches!(
            self,
            HttpError::UnexpectedEof | HttpError::Idle | HttpError::Io(_)
        )
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::TooLarge(what) => write!(f, "{what} exceeds the configured limit"),
            HttpError::BodyTooLarge { length, limit } => {
                write!(f, "content-length {length} exceeds the {limit}-byte limit")
            }
            HttpError::UnsupportedMethod(m) => write!(f, "method `{m}` not supported"),
            HttpError::UnsupportedVersion(v) => write!(f, "version `{v}` not supported"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::Idle => write!(f, "connection idle"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, `HEAD`).
    pub method: String,
    /// Percent-decoded path component of the target (always starts with `/`).
    pub path: String,
    /// Decoded `key=value` query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header fields with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// True for HTTP/1.1, false for HTTP/1.0.
    pub http11: bool,
}

impl Request {
    /// The first header value under `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter under `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection` header overrides either way.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Reads one line (terminated by `\n`; a trailing `\r` is stripped) of at
/// most `limit` bytes.  Returns `Ok(None)` on EOF *before any byte*, and
/// distinguishes an idle timeout (no bytes yet) from one mid-line.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    limit: usize,
    what: &'static str,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if line.is_empty() {
                    return Err(HttpError::Idle);
                }
                return Err(HttpError::UnexpectedEof);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                // A reset with no bytes of a message is a clean-enough close;
                // mid-message it is a truncated request.
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::UnexpectedEof);
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if available.is_empty() {
            // EOF.
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::UnexpectedEof);
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(available.len());
        if line.len() + take > limit + 2 {
            // +2 tolerates the CRLF itself on an exactly-limit-sized line.
            return Err(HttpError::TooLarge(what));
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            line.pop(); // the \n
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(line));
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space in a URL component.  Invalid
/// escapes are passed through literally (never an error — query strings are
/// attacker-controlled and handlers validate values anyway).
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| std::str::from_utf8(h).ok()) {
                    Some(h) => match u8::from_str_radix(h, 16) {
                        Ok(byte) => {
                            out.push(byte);
                            i += 3;
                        }
                        Err(_) => {
                            out.push(b'%');
                            i += 1;
                        }
                    },
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into the decoded path and query pairs.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target must start with `/`, got `{target}`"
        )));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect();
    Ok((percent_decode(raw_path), query))
}

/// Reads one request from `reader` under `limits`.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly before
/// sending any byte (the normal end of a keep-alive session), and exactly
/// one message per call otherwise — pipelined requests queued behind it stay
/// buffered for the next call.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    let line = match read_line_limited(reader, limits.max_request_line, "request line")? {
        None => return Ok(None),
        Some(line) => line,
    };
    let line = String::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("request line is not UTF-8".into()))?;
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{}`",
                line.escape_default()
            )))
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::UnsupportedVersion(other.to_string())),
    };
    match method {
        "GET" | "POST" | "HEAD" => {}
        other if other.chars().all(|c| c.is_ascii_uppercase()) => {
            return Err(HttpError::UnsupportedMethod(other.to_string()))
        }
        other => {
            return Err(HttpError::BadRequest(format!(
                "invalid method token `{}`",
                other.escape_default()
            )))
        }
    }
    let (path, query) = parse_target(target)?;

    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(reader, limits.max_header_line, "header line")?
            .ok_or(HttpError::UnexpectedEof)?;
        if line.is_empty() {
            break;
        }
        if headers.len() == limits.max_headers {
            return Err(HttpError::TooLarge("header count"));
        }
        let line = String::from_utf8(line)
            .map_err(|_| HttpError::BadRequest("header is not UTF-8".into()))?;
        let (name, value) = line.split_once(':').ok_or_else(|| {
            HttpError::BadRequest(format!("header without `:`: `{}`", line.escape_default()))
        })?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!(
                "invalid header name `{}`",
                name.escape_default()
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
        http11,
    };
    if let Some(te) = request.header("transfer-encoding") {
        return Err(HttpError::BadRequest(format!(
            "transfer-encoding `{te}` not supported (use content-length)"
        )));
    }
    if let Some(raw) = request.header("content-length") {
        let length: usize = raw.parse().map_err(|_| {
            HttpError::BadRequest(format!("invalid content-length `{}`", raw.escape_default()))
        })?;
        if length > limits.max_body {
            return Err(HttpError::BodyTooLarge {
                length,
                limit: limits.max_body,
            });
        }
        let mut body = vec![0u8; length];
        let mut read = 0;
        while read < length {
            match reader.read(&mut body[read..]) {
                Ok(0) => return Err(HttpError::UnexpectedEof),
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    return Err(HttpError::UnexpectedEof)
                }
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
        request.body = body;
    }
    Ok(Some(request))
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes (JSON for every endpoint of this server).
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Whether the connection stays open after this response.
    pub keep_alive: bool,
    /// When set, a `Retry-After: <secs>` header is written — overload
    /// answers (503/504) tell well-behaved clients how long to back off.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            body: body.into(),
            content_type: "application/json",
            keep_alive: true,
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After` header of `secs` seconds.
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// The canonical reason phrase of the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serializes `response` onto `writer` (HTTP/1.1, explicit content length
/// and connection token).
pub fn write_response<W: Write>(writer: &mut W, response: &Response) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if response.keep_alive {
            "keep-alive"
        } else {
            "close"
        },
    )?;
    if let Some(secs) = response.retry_after {
        write!(writer, "retry-after: {secs}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(&response.body)?;
    writer.flush()
}

/// One response as seen by the client half of the protocol: the status, the
/// body and the overload-relevant headers.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// The `Retry-After` header in whole seconds, when present and numeric.
    pub retry_after: Option<u64>,
}

/// Reads one response (status code + body) from `reader` — the client half
/// of the protocol, used by the load generator and the tests.
pub fn read_response<R: BufRead>(
    reader: &mut R,
    limits: &HttpLimits,
) -> Result<(u16, Vec<u8>), HttpError> {
    read_client_response(reader, limits).map(|r| (r.status, r.body))
}

/// [`read_response`] keeping the headers resilient clients act on
/// (`Retry-After`).
pub fn read_client_response<R: BufRead>(
    reader: &mut R,
    limits: &HttpLimits,
) -> Result<ClientResponse, HttpError> {
    let line = read_line_limited(reader, limits.max_request_line, "status line")?
        .ok_or(HttpError::UnexpectedEof)?;
    let line = String::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("status line is not UTF-8".into()))?;
    let mut parts = line.split_ascii_whitespace();
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "malformed status line `{}`",
            line.escape_default()
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::BadRequest(format!("missing status code in `{line}`")))?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    loop {
        let line = read_line_limited(reader, limits.max_header_line, "header line")?
            .ok_or(HttpError::UnexpectedEof)?;
        if line.is_empty() {
            break;
        }
        let line = String::from_utf8_lossy(&line).into_owned();
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::BadRequest(format!("invalid content-length `{value}`"))
                })?;
                if content_length > limits.max_body {
                    return Err(HttpError::BodyTooLarge {
                        length: content_length,
                        limit: limits.max_body,
                    });
                }
            } else if name.eq_ignore_ascii_case("retry-after") {
                // A malformed value is ignored, not an error: the header is
                // advisory and servers in the wild send HTTP-dates here too.
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    let mut read = 0;
    while read < content_length {
        match reader.read(&mut body[read..]) {
            Ok(0) => return Err(HttpError::UnexpectedEof),
            Ok(n) => read += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(ClientResponse {
        status,
        body,
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        let mut reader = BufReader::new(text.as_bytes());
        read_request(&mut reader, &HttpLimits::default())
    }

    #[test]
    fn parses_a_minimal_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.query.is_empty());
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_query_parameters_with_percent_decoding() {
        let req = parse("GET /ppr?source=42&mode=push&x=a%20b+c HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("source"), Some("42"));
        assert_eq!(req.query_param("mode"), Some("push"));
        assert_eq!(req.query_param("x"), Some("a b c"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn clean_eof_returns_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn reads_content_length_bodies() {
        let req = parse("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        let resp = Response {
            keep_alive: false,
            ..Response::json(200, r#"{"ok":true}"#.as_bytes().to_vec())
        };
        write_response(&mut wire, &resp).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let (status, body) = read_response(&mut reader, &HttpLimits::default()).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"ok":true}"#);
    }

    #[test]
    fn retry_after_round_trips() {
        let mut wire = Vec::new();
        let resp = Response::json(503, r#"{"error":"overloaded"}"#.as_bytes().to_vec())
            .with_retry_after(2);
        write_response(&mut wire, &resp).unwrap();
        let text = String::from_utf8_lossy(&wire).into_owned();
        assert!(text.contains("retry-after: 2\r\n"), "{text}");
        let mut reader = BufReader::new(wire.as_slice());
        let parsed = read_client_response(&mut reader, &HttpLimits::default()).unwrap();
        assert_eq!(parsed.status, 503);
        assert_eq!(parsed.retry_after, Some(2));
        // Absent on plain responses, and malformed values are ignored.
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::json(200, b"{}".to_vec())).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(
            read_client_response(&mut reader, &HttpLimits::default())
                .unwrap()
                .retry_after,
            None
        );
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nretry-after: soon\r\ncontent-length: 0\r\n\r\n";
        let mut reader = BufReader::new(raw.as_slice());
        let parsed = read_client_response(&mut reader, &HttpLimits::default()).unwrap();
        assert_eq!(parsed.retry_after, None);
    }

    #[test]
    fn gateway_timeout_has_a_reason_phrase() {
        assert_eq!(reason(504), "Gateway Timeout");
        assert_eq!(reason(429), "Too Many Requests");
    }
}
