//! The long-lived server: shared state, the endpoint router and the
//! accept loop with graceful drain-on-shutdown.
//!
//! ## Endpoints
//!
//! | Endpoint     | Parameters | Answer |
//! |--------------|------------|--------|
//! | `GET /healthz` | — | liveness + graph size |
//! | `GET /stats` | — | cache/batch/request counters, uptime |
//! | `GET /ppr` | `source` (required), `alpha`, `r_max`, `mode=push\|exact`, `top` | single-source PPR through the batcher + cache |
//! | `GET /knn` | `source` (required), `k` | top-K nearest neighbours by embedding score |
//! | `GET /recommend` | `source` (required), `k` | top-K *unlinked* candidates (link prediction) |
//! | `GET /metrics` | — | Prometheus text exposition of every instrument family |
//! | `GET /debug/traces` | — | JSONL dump of the most recent per-request traces |
//!
//! `/ppr` also honours two telemetry headers: `x-trace: 1` adds a `trace`
//! block (deterministic trace ID plus per-stage microseconds: parse,
//! admission, queue_wait, batch_assembly, kernel_compute, serialize) to the
//! response, and every `/ppr` request — traced or not — records its stage
//! breakdown into the bounded ring served at `/debug/traces`.
//!
//! Every response is JSON.  `/ppr` answers are **bitwise identical** to
//! calling [`forward_push`](nrp_core::push::forward_push) /
//! [`single_source_ppr`](nrp_core::ppr::single_source_ppr) directly,
//! whether they came from the cache, a coalesced batch or a fresh
//! computation — the vendored JSON printer renders finite `f64`s with
//! Rust's shortest-round-trip formatting, so the contract survives the
//! wire.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nrp_core::{EmbedContext, Embedding};
use nrp_graph::{Graph, GraphKind};
use nrp_obs::{
    clock, Counter, FamilySnapshot, Histogram, MetricKind, MetricsHandle, MetricsSnapshot,
    SeriesSnapshot, SeriesValue, Span, TraceContext, TraceIds, TraceLog,
};

use crate::batcher::{Batcher, PprAnswer, SubmitError};
use crate::cache::{CacheKey, PprCache};
use crate::config::ServeConfig;
use crate::degrade::{DegradeController, DegradeLevel};
use crate::http::{read_request, write_response, HttpLimits, Request, Response};
use crate::sync::lock_unpoisoned;

/// How often an idle keep-alive connection polls the shutdown flag.  The
/// socket read timeout is this poll interval, not the configured idle
/// timeout, so shutdown never waits longer than one tick on idle peers.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Per-endpoint request counters.
#[derive(Debug, Default)]
pub struct RequestCounters {
    /// Total requests parsed.
    pub total: AtomicU64,
    /// `/healthz` hits.
    pub healthz: AtomicU64,
    /// `/stats` hits.
    pub stats: AtomicU64,
    /// `/ppr` hits.
    pub ppr: AtomicU64,
    /// `/knn` hits.
    pub knn: AtomicU64,
    /// `/recommend` hits.
    pub recommend: AtomicU64,
    /// Responses with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Requests rejected at the HTTP layer (malformed, oversized, …).
    pub bad_requests: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests shed with `503` (full queue, cache-only miss, shutdown).
    pub shed: AtomicU64,
    /// Requests answered `504` because their deadline expired.
    pub timeouts: AtomicU64,
    /// Exact-mode `/ppr` requests downgraded to forward push.
    pub degraded: AtomicU64,
    /// Responses that carried a `Retry-After` header.
    pub retry_after: AtomicU64,
    /// Connections rejected at the accept loop (in-flight limit).
    pub conn_rejected: AtomicU64,
    /// `/metrics` hits.
    pub metrics: AtomicU64,
    /// `/debug/traces` hits.
    pub traces: AtomicU64,
}

/// One endpoint's registry-backed instruments, resolved once at startup so
/// the request path never touches the registry lock.
struct EndpointMetrics {
    /// This endpoint's wire name (the `endpoint` label value).
    name: &'static str,
    /// End-to-end handler latency, microseconds.
    latency_us: Histogram,
    /// Requests this endpoint answered `503`.
    shed: Counter,
    /// Requests this endpoint answered `504`.
    timeouts: Counter,
}

impl EndpointMetrics {
    fn new(metrics: &MetricsHandle, name: &'static str) -> Self {
        let labels: &[(&str, &str)] = &[("endpoint", name)];
        Self {
            name,
            latency_us: metrics.histogram_with(
                "nrp_serve_request_latency_us",
                "End-to-end handler latency per endpoint, microseconds.",
                labels,
            ),
            shed: metrics.counter_with(
                "nrp_serve_shed_total",
                "Requests answered 503 (load shed), per endpoint.",
                labels,
            ),
            timeouts: metrics.counter_with(
                "nrp_serve_timeouts_total",
                "Requests answered 504 (deadline exceeded), per endpoint.",
                labels,
            ),
        }
    }
}

/// The server's per-endpoint instruments.  Everything else on `/metrics`
/// (cache, batch counters, degrade transitions, request totals) is derived
/// at scrape time from the counters the subsystems already keep.
struct ServeMetrics {
    endpoints: Vec<EndpointMetrics>,
}

impl ServeMetrics {
    fn new(metrics: &MetricsHandle) -> Self {
        Self {
            endpoints: ["/ppr", "/knn", "/recommend", "/healthz", "/stats"]
                .iter()
                .map(|name| EndpointMetrics::new(metrics, name))
                .collect(),
        }
    }

    fn endpoint(&self, path: &str) -> Option<&EndpointMetrics> {
        self.endpoints.iter().find(|e| e.name == path)
    }
}

/// Everything the handlers share: the graph, the (optional) embedding, the
/// cache, the batching dispatcher and the counters.
pub struct ServeState {
    graph: Arc<Graph>,
    embedding: Option<Arc<Embedding>>,
    config: ServeConfig,
    cache: Arc<Mutex<PprCache>>,
    batcher: Batcher,
    counters: RequestCounters,
    degrade: DegradeController,
    /// Connections currently being served (the accept-loop admission gauge).
    inflight: AtomicUsize,
    started: Instant,
    /// The registry handle every subsystem resolved its instruments from
    /// (a no-op handle when `config.metrics_enabled` is false).
    metrics: MetricsHandle,
    serve_metrics: ServeMetrics,
    trace_ids: TraceIds,
    trace_log: TraceLog,
}

impl ServeState {
    /// Assembles the state: builds the cache, spawns the batching
    /// dispatcher on a warm [`EmbedContext`] worker pool sized by
    /// `config.threads`, and resolves every telemetry instrument from one
    /// server-scoped registry (or a no-op handle when
    /// `config.metrics_enabled` is off).
    pub fn new(graph: Graph, embedding: Option<Embedding>, config: ServeConfig) -> Self {
        let graph = Arc::new(graph);
        let cache = Arc::new(Mutex::new(PprCache::new(config.cache_capacity)));
        let metrics = if config.metrics_enabled {
            MetricsHandle::enabled()
        } else {
            MetricsHandle::noop()
        };
        let serve_metrics = ServeMetrics::new(&metrics);
        let ctx = EmbedContext::new()
            .with_threads(config.threads)
            .with_metrics(metrics.clone());
        let batcher = Batcher::new(
            Arc::clone(&graph),
            config.dangling,
            ctx,
            Arc::clone(&cache),
            config.max_batch,
            config.queue_capacity,
        );
        let degrade = DegradeController::new(
            config.degrade_threshold,
            config.degrade_window_ms,
            config.degrade_recover_ms,
        );
        let trace_log = TraceLog::new(config.trace_capacity);
        Self {
            graph,
            embedding: embedding.map(Arc::new),
            config,
            cache,
            batcher,
            counters: RequestCounters::default(),
            degrade,
            inflight: AtomicUsize::new(0),
            started: clock::now(),
            metrics,
            serve_metrics,
            trace_ids: TraceIds::new(),
            trace_log,
        }
    }

    /// Milliseconds since this state was built — the clock the degradation
    /// controller runs on.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The degradation level currently in effect.
    pub fn degrade_level(&self) -> DegradeLevel {
        self.degrade.level(self.now_ms())
    }

    /// Pins the degradation level (tests and operator overrides).
    pub fn force_degrade(&self, level: DegradeLevel) {
        self.degrade.force(level, self.now_ms());
    }

    /// The graph being served.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The HTTP parsing limits derived from the configuration.
    pub fn limits(&self) -> HttpLimits {
        HttpLimits {
            max_body: self.config.max_body_bytes,
            ..HttpLimits::default()
        }
    }

    /// Routes one parsed request to its handler, attributing latency and
    /// shed/timeout outcomes to the endpoint that produced them.
    pub fn handle(&self, request: &Request) -> Response {
        let started = clock::now();
        self.counters.total.fetch_add(1, Ordering::Relaxed);
        let response = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                self.counters.healthz.fetch_add(1, Ordering::Relaxed);
                self.handle_healthz()
            }
            ("GET", "/stats") => {
                self.counters.stats.fetch_add(1, Ordering::Relaxed);
                self.handle_stats()
            }
            ("GET", "/ppr") => {
                self.counters.ppr.fetch_add(1, Ordering::Relaxed);
                self.handle_ppr(request)
            }
            ("GET", "/knn") => {
                self.counters.knn.fetch_add(1, Ordering::Relaxed);
                self.handle_topk(request, false)
            }
            ("GET", "/recommend") => {
                self.counters.recommend.fetch_add(1, Ordering::Relaxed);
                self.handle_topk(request, true)
            }
            ("GET", "/metrics") => {
                self.counters.metrics.fetch_add(1, Ordering::Relaxed);
                self.handle_metrics()
            }
            ("GET", "/debug/traces") => {
                self.counters.traces.fetch_add(1, Ordering::Relaxed);
                self.handle_traces()
            }
            (
                _,
                "/healthz" | "/stats" | "/ppr" | "/knn" | "/recommend" | "/metrics"
                | "/debug/traces",
            ) => error_response(405, "only GET is supported"),
            _ => error_response(404, &format!("no such endpoint `{}`", request.path)),
        };
        if response.status >= 400 {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        // Central attribution: one place classifies every outcome, so the
        // per-endpoint shed/timeout split cannot drift from the handlers.
        if let Some(endpoint) = self.serve_metrics.endpoint(request.path.as_str()) {
            endpoint.latency_us.observe(clock::micros_since(started));
            match response.status {
                503 => endpoint.shed.inc(),
                504 => endpoint.timeouts.inc(),
                _ => {}
            }
        }
        response
    }

    fn handle_healthz(&self) -> Response {
        let mut object = serde::Map::new();
        object.insert("status", serde::Value::String("ok".into()));
        object.insert(
            "state",
            serde::Value::String(self.degrade_level().as_str().into()),
        );
        object.insert("nodes", serde::Serialize::to_value(&self.graph.num_nodes()));
        object.insert(
            "inflight",
            serde::Serialize::to_value(&self.inflight.load(Ordering::Relaxed)),
        );
        object.insert(
            "uptime_secs",
            serde::Serialize::to_value(&self.started.elapsed().as_secs_f64()),
        );
        json_response(200, serde::Value::Object(object))
    }

    /// `GET /metrics`: the registry's instrument families plus the derived
    /// families (request totals, cache, batch, degrade, process gauges) in
    /// the Prometheus text exposition format.
    fn handle_metrics(&self) -> Response {
        let mut snapshot = self.metrics.snapshot();
        self.append_derived_families(&mut snapshot);
        Response {
            status: 200,
            body: snapshot.render_prometheus().into_bytes(),
            content_type: "text/plain; version=0.0.4",
            keep_alive: true,
            retry_after: None,
        }
    }

    /// `GET /debug/traces`: the trace ring as JSONL, oldest first.
    fn handle_traces(&self) -> Response {
        Response {
            status: 200,
            body: self.trace_log.dump_jsonl().into_bytes(),
            content_type: "application/x-ndjson",
            keep_alive: true,
            retry_after: None,
        }
    }

    /// Families derived from counters that live outside the registry (the
    /// request/cache/batch/degrade atomics predate it and `/stats` still
    /// reads them directly); deriving at scrape time keeps one source of
    /// truth per number.
    fn append_derived_families(&self, snapshot: &mut MetricsSnapshot) {
        let c = &self.counters;
        let per_endpoint: Vec<(&str, u64)> = vec![
            ("/healthz", c.healthz.load(Ordering::Relaxed)),
            ("/stats", c.stats.load(Ordering::Relaxed)),
            ("/ppr", c.ppr.load(Ordering::Relaxed)),
            ("/knn", c.knn.load(Ordering::Relaxed)),
            ("/recommend", c.recommend.load(Ordering::Relaxed)),
            ("/metrics", c.metrics.load(Ordering::Relaxed)),
            ("/debug/traces", c.traces.load(Ordering::Relaxed)),
        ];
        snapshot.push_family(FamilySnapshot {
            name: "nrp_serve_requests_total".into(),
            help: "Requests routed, per endpoint.".into(),
            kind: MetricKind::Counter,
            series: per_endpoint
                .into_iter()
                .map(|(endpoint, v)| SeriesSnapshot {
                    labels: vec![("endpoint".into(), endpoint.into())],
                    value: SeriesValue::Counter(v),
                })
                .collect(),
        });
        for (name, help, value) in [
            (
                "nrp_serve_errors_total",
                "Responses with a 4xx/5xx status.",
                c.errors.load(Ordering::Relaxed),
            ),
            (
                "nrp_serve_bad_requests_total",
                "Requests rejected at the HTTP layer.",
                c.bad_requests.load(Ordering::Relaxed),
            ),
            (
                "nrp_serve_connections_total",
                "Connections accepted.",
                c.connections.load(Ordering::Relaxed),
            ),
            (
                "nrp_serve_conn_rejected_total",
                "Connections rejected at the accept loop (in-flight limit).",
                c.conn_rejected.load(Ordering::Relaxed),
            ),
            (
                "nrp_serve_degraded_total",
                "Exact-mode /ppr requests downgraded to forward push.",
                c.degraded.load(Ordering::Relaxed),
            ),
            (
                "nrp_serve_retry_after_total",
                "Responses that carried a Retry-After header.",
                c.retry_after.load(Ordering::Relaxed),
            ),
            (
                "nrp_degrade_escalations_total",
                "Degrade-ladder rungs stepped up under pressure.",
                self.degrade.escalations(),
            ),
            (
                "nrp_degrade_recoveries_total",
                "Degrade-ladder rungs stepped down after quiet periods.",
                self.degrade.recoveries(),
            ),
        ] {
            snapshot.push_family(unlabeled(name, help, MetricKind::Counter, value));
        }
        // nrp-lint: allow(K003) — resolves to `PprCache::snapshot`, which only copies counters under the cache lock
        let cache = lock_unpoisoned(&self.cache).snapshot();
        for (name, help, value) in [
            ("nrp_cache_hits_total", "Hot-source cache hits.", cache.hits),
            (
                "nrp_cache_misses_total",
                "Hot-source cache misses.",
                cache.misses,
            ),
            (
                "nrp_cache_insertions_total",
                "Hot-source cache insertions.",
                cache.insertions,
            ),
            (
                "nrp_cache_evictions_total",
                "Hot-source cache LRU evictions.",
                cache.evictions,
            ),
        ] {
            snapshot.push_family(unlabeled(name, help, MetricKind::Counter, value));
        }
        snapshot.push_family(unlabeled(
            "nrp_cache_entries",
            "Hot-source cache entries currently resident.",
            MetricKind::Gauge,
            cache.len as u64,
        ));
        let batch = self.batcher.snapshot();
        for (name, help, value) in [
            (
                "nrp_batch_batches_total",
                "Dispatcher wake-ups that processed at least one job.",
                batch.batches,
            ),
            (
                "nrp_batch_jobs_total",
                "Jobs submitted to the batcher.",
                batch.jobs,
            ),
            (
                "nrp_batch_coalesced_total",
                "Jobs that shared a computation with an identical concurrent key.",
                batch.coalesced,
            ),
            (
                "nrp_batch_computed_total",
                "Unique keys computed (not answered by the cache).",
                batch.computed,
            ),
            (
                "nrp_batch_expired_total",
                "Queued jobs shed because their deadline had already passed.",
                batch.expired,
            ),
            (
                "nrp_batch_panics_total",
                "Per-key computations that panicked (caught).",
                batch.panics,
            ),
        ] {
            snapshot.push_family(unlabeled(name, help, MetricKind::Counter, value));
        }
        snapshot.push_family(unlabeled(
            "nrp_degrade_state",
            "Current degrade-ladder rung (0=normal, 1=degraded, 2=cache-only).",
            MetricKind::Gauge,
            self.degrade_level() as u64,
        ));
        snapshot.push_family(unlabeled(
            "nrp_serve_inflight_connections",
            "Connections currently being served.",
            MetricKind::Gauge,
            self.inflight.load(Ordering::Relaxed) as u64,
        ));
        snapshot.push_family(unlabeled(
            "nrp_serve_uptime_seconds",
            "Whole seconds since the server state was built.",
            MetricKind::Gauge,
            self.started.elapsed().as_secs(),
        ));
    }

    fn handle_stats(&self) -> Response {
        // nrp-lint: allow(K003) — resolves to `PprCache::snapshot`, which only copies counters under the cache lock
        let cache = lock_unpoisoned(&self.cache).snapshot();
        let batch = self.batcher.snapshot();
        let c = &self.counters;
        let mut cache_object = serde::Map::new();
        cache_object.insert("hits", serde::Serialize::to_value(&cache.hits));
        cache_object.insert("misses", serde::Serialize::to_value(&cache.misses));
        cache_object.insert("insertions", serde::Serialize::to_value(&cache.insertions));
        cache_object.insert("evictions", serde::Serialize::to_value(&cache.evictions));
        cache_object.insert("len", serde::Serialize::to_value(&cache.len));
        cache_object.insert("capacity", serde::Serialize::to_value(&cache.capacity));
        let mut batch_object = serde::Map::new();
        batch_object.insert("batches", serde::Serialize::to_value(&batch.batches));
        batch_object.insert("jobs", serde::Serialize::to_value(&batch.jobs));
        batch_object.insert("coalesced", serde::Serialize::to_value(&batch.coalesced));
        batch_object.insert("max_batch", serde::Serialize::to_value(&batch.max_batch));
        batch_object.insert("computed", serde::Serialize::to_value(&batch.computed));
        batch_object.insert("expired", serde::Serialize::to_value(&batch.expired));
        batch_object.insert("panics", serde::Serialize::to_value(&batch.panics));
        batch_object.insert(
            "queue_depth",
            serde::Serialize::to_value(&batch.queue_depth),
        );
        let mut requests = serde::Map::new();
        for (name, counter) in [
            ("total", &c.total),
            ("healthz", &c.healthz),
            ("stats", &c.stats),
            ("ppr", &c.ppr),
            ("knn", &c.knn),
            ("recommend", &c.recommend),
            ("metrics", &c.metrics),
            ("traces", &c.traces),
            ("errors", &c.errors),
            ("bad_requests", &c.bad_requests),
            ("connections", &c.connections),
        ] {
            requests.insert(
                name,
                serde::Serialize::to_value(&counter.load(Ordering::Relaxed)),
            );
        }
        let mut graph_object = serde::Map::new();
        graph_object.insert("nodes", serde::Serialize::to_value(&self.graph.num_nodes()));
        graph_object.insert("arcs", serde::Serialize::to_value(&self.graph.num_arcs()));
        graph_object.insert(
            "kind",
            serde::Value::String(
                match self.graph.kind() {
                    GraphKind::Directed => "directed",
                    GraphKind::Undirected => "undirected",
                }
                .into(),
            ),
        );
        let mut embedding_object = serde::Map::new();
        embedding_object.insert("loaded", serde::Value::Bool(self.embedding.is_some()));
        if let Some(embedding) = &self.embedding {
            embedding_object.insert("method", serde::Value::String(embedding.method().into()));
            embedding_object.insert(
                "dimension",
                serde::Serialize::to_value(&embedding.dimension()),
            );
        }
        let mut resilience = serde::Map::new();
        resilience.insert(
            "state",
            serde::Value::String(self.degrade_level().as_str().into()),
        );
        for (name, counter) in [
            ("shed", &c.shed),
            ("timeouts", &c.timeouts),
            ("degraded", &c.degraded),
            ("retry_after", &c.retry_after),
            ("conn_rejected", &c.conn_rejected),
        ] {
            resilience.insert(
                name,
                serde::Serialize::to_value(&counter.load(Ordering::Relaxed)),
            );
        }
        resilience.insert(
            "escalations",
            serde::Serialize::to_value(&self.degrade.escalations()),
        );
        resilience.insert(
            "recoveries",
            serde::Serialize::to_value(&self.degrade.recoveries()),
        );
        // Per-endpoint shed/timeout split, read from the registry counters
        // the router maintains (zeros with metrics disabled).
        let mut by_endpoint = serde::Map::new();
        for endpoint in &self.serve_metrics.endpoints {
            let mut entry = serde::Map::new();
            entry.insert("shed", serde::Serialize::to_value(&endpoint.shed.value()));
            entry.insert(
                "timeouts",
                serde::Serialize::to_value(&endpoint.timeouts.value()),
            );
            by_endpoint.insert(endpoint.name, serde::Value::Object(entry));
        }
        resilience.insert("by_endpoint", serde::Value::Object(by_endpoint));
        resilience.insert(
            "inflight",
            serde::Serialize::to_value(&self.inflight.load(Ordering::Relaxed)),
        );
        resilience.insert(
            "queue_capacity",
            serde::Serialize::to_value(&self.config.queue_capacity),
        );
        resilience.insert(
            "max_connections",
            serde::Serialize::to_value(&self.config.max_connections),
        );
        // Per-endpoint latency quantiles from the registry histograms
        // (empty counts with metrics disabled).
        let mut latency = serde::Map::new();
        for endpoint in &self.serve_metrics.endpoints {
            let snapshot = endpoint.latency_us.snapshot();
            let mut entry = serde::Map::new();
            entry.insert("count", serde::Serialize::to_value(&snapshot.count()));
            entry.insert(
                "p50_us",
                serde::Serialize::to_value(&snapshot.quantile(0.5)),
            );
            entry.insert(
                "p99_us",
                serde::Serialize::to_value(&snapshot.quantile(0.99)),
            );
            latency.insert(endpoint.name, serde::Value::Object(entry));
        }
        let mut telemetry = serde::Map::new();
        telemetry.insert(
            "metrics_enabled",
            serde::Value::Bool(self.metrics.is_enabled()),
        );
        telemetry.insert(
            "trace_capacity",
            serde::Serialize::to_value(&self.config.trace_capacity),
        );
        telemetry.insert(
            "traces_retained",
            serde::Serialize::to_value(&self.trace_log.len()),
        );
        let mut object = serde::Map::new();
        object.insert(
            "uptime_secs",
            serde::Serialize::to_value(&self.started.elapsed().as_secs_f64()),
        );
        object.insert("threads", serde::Serialize::to_value(&self.config.threads));
        object.insert("graph", serde::Value::Object(graph_object));
        object.insert("embedding", serde::Value::Object(embedding_object));
        object.insert("cache", serde::Value::Object(cache_object));
        object.insert("batch", serde::Value::Object(batch_object));
        object.insert("requests", serde::Value::Object(requests));
        object.insert("resilience", serde::Value::Object(resilience));
        object.insert("latency", serde::Value::Object(latency));
        object.insert("telemetry", serde::Value::Object(telemetry));
        json_response(200, serde::Value::Object(object))
    }

    /// `/ppr` with per-request latency attribution: every request records a
    /// stage breakdown (parse → admission → queue_wait → batch_assembly →
    /// kernel_compute → serialize) into the trace ring, and `x-trace: 1`
    /// additionally inlines it into the response.
    fn handle_ppr(&self, request: &Request) -> Response {
        let mut trace = TraceContext::new(self.trace_ids.next_id());
        let result = self.ppr_inner(request, &mut trace);
        let status = match &result {
            Ok(_) => 200,
            Err(response) => response.status,
        };
        let event = trace.finish("/ppr", status);
        let response = match result {
            Ok(mut object) => {
                if request.header("x-trace").map(str::trim) == Some("1") {
                    object.insert("trace", trace_value(&event));
                }
                json_response(200, serde::Value::Object(object))
            }
            Err(response) => response,
        };
        // nrp-lint: allow(R001) — `TraceLog::push` evicts oldest-first: the ring never exceeds its fixed capacity
        self.trace_log.push(event);
        response
    }

    /// The `/ppr` pipeline proper; returns the response object on success
    /// so [`ServeState::handle_ppr`] can inline the trace before
    /// serializing.
    fn ppr_inner(
        &self,
        request: &Request,
        trace: &mut TraceContext,
    ) -> Result<serde::Map, Response> {
        let parse_span = Span::start("parse");
        let params = self.parse_ppr_params(request);
        parse_span.finish(trace);
        let params = params.map_err(|response| *response)?;
        let deadline = (params.deadline_ms > 0)
            .then(|| clock::now() + Duration::from_millis(params.deadline_ms));

        // Graceful degradation: under sustained pressure, exact mode
        // downgrades to forward push (bitwise identical to a direct push
        // call — it takes the ordinary push path end to end), and in
        // cache-only mode uncached answers shed instead of computing.
        let admission_span = Span::start("admission");
        let mut level = self.degrade_level();
        if level >= DegradeLevel::CacheOnly && self.config.cache_capacity == 0 {
            // Cache-only service without a cache would be a total outage,
            // strictly worse than the rung below it; stop the ladder at
            // the push downgrade and let the bounded queue do the shedding.
            level = DegradeLevel::Degraded;
        }
        let mut exact = params.exact;
        let mut downgraded = false;
        if exact && level >= DegradeLevel::Degraded {
            exact = false;
            downgraded = true;
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
        }

        let key = CacheKey::new(params.source, params.alpha, params.r_max, exact);
        let answer = if level >= DegradeLevel::CacheOnly {
            // Probe under the lock, answer after it is released (K003).
            let cached = {
                let mut cache = lock_unpoisoned(&self.cache);
                cache.get(&key)
            };
            admission_span.finish(trace);
            match cached {
                Some(answer) => answer,
                None => {
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(self.overloaded_response("serving cached answers only"));
                }
            }
        } else {
            admission_span.finish(trace);
            match self.batcher.submit_traced(key, deadline) {
                Ok((answer, timing)) => {
                    trace.record("queue_wait", timing.queue_wait_us);
                    trace.record("batch_assembly", timing.assembly_us);
                    trace.record("kernel_compute", timing.compute_us);
                    answer
                }
                Err(SubmitError::QueueFull) => {
                    self.degrade.record_pressure(self.now_ms());
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(self.overloaded_response("request queue is full"));
                }
                Err(SubmitError::DeadlineExceeded) => {
                    self.degrade.record_pressure(self.now_ms());
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(error_response(504, "deadline exceeded"));
                }
                Err(SubmitError::ShuttingDown) => {
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(error_response(503, "server is shutting down"));
                }
                Err(error @ (SubmitError::WorkerPanic | SubmitError::Failed(_))) => {
                    return Err(error_response(500, &error.to_string()));
                }
            }
        };

        let serialize_span = Span::start("serialize");
        let object = self.ppr_object(
            params.source,
            params.alpha,
            params.r_max,
            exact,
            params.top,
            downgraded,
            &answer,
        );
        serialize_span.finish(trace);
        Ok(object)
    }

    /// Parses and validates every `/ppr` parameter.
    fn parse_ppr_params(&self, request: &Request) -> Result<PprParams, Box<Response>> {
        let source = self.parse_source(request)?;
        let alpha = parse_float(request, "alpha", self.config.alpha)?;
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(Box::new(error_response(
                400,
                &format!("`alpha` must be in (0,1), got {alpha}"),
            )));
        }
        let r_max = parse_float(request, "r_max", self.config.r_max)?;
        if r_max <= 0.0 {
            return Err(Box::new(error_response(
                400,
                &format!("`r_max` must be positive, got {r_max}"),
            )));
        }
        let exact = match request.query_param("mode").unwrap_or("push") {
            "push" => false,
            "exact" => true,
            other => {
                return Err(Box::new(error_response(
                    400,
                    &format!("`mode` must be push|exact, got `{other}`"),
                )))
            }
        };
        let top = match request.query_param("top") {
            None => None,
            Some(raw) => match raw.parse::<usize>() {
                Ok(v) => Some(v),
                Err(_) => {
                    return Err(Box::new(error_response(
                        400,
                        &format!("`top` must be a non-negative integer, got `{raw}`"),
                    )))
                }
            },
        };
        // Deadline: the client's `x-deadline-ms` header wins, else the
        // configured default; 0 (either way) means no deadline.
        let deadline_ms = match request.header("x-deadline-ms") {
            None => self.config.deadline_ms,
            Some(raw) => match raw.trim().parse::<u64>() {
                Ok(ms) => ms,
                Err(_) => {
                    return Err(Box::new(error_response(
                        400,
                        &format!("`x-deadline-ms` must be a non-negative integer, got `{raw}`"),
                    )))
                }
            },
        };
        Ok(PprParams {
            source,
            alpha,
            r_max,
            exact,
            top,
            deadline_ms,
        })
    }

    /// `503` + `Retry-After`: the standard shape of every shed answer.
    fn overloaded_response(&self, message: &str) -> Response {
        self.counters.retry_after.fetch_add(1, Ordering::Relaxed);
        error_response(503, message).with_retry_after(self.config.retry_after_secs)
    }

    /// Builds one `/ppr` answer object.  Shared by the batcher path and the
    /// cache-only path so degraded answers stay bitwise identical to
    /// full-service push answers.
    #[allow(clippy::too_many_arguments)]
    fn ppr_object(
        &self,
        source: u32,
        alpha: f64,
        r_max: f64,
        exact: bool,
        top: Option<usize>,
        downgraded: bool,
        answer: &PprAnswer,
    ) -> serde::Map {
        let mut object = serde::Map::new();
        object.insert("source", serde::Serialize::to_value(&source));
        object.insert("alpha", serde::Serialize::to_value(&alpha));
        object.insert("r_max", serde::Serialize::to_value(&r_max));
        object.insert(
            "mode",
            serde::Value::String(if exact { "exact" } else { "push" }.into()),
        );
        if downgraded {
            object.insert("degraded", serde::Value::Bool(true));
        }
        if exact {
            let dense = answer.dense.as_deref().unwrap_or_default();
            match top {
                // The full dense vector: the shortest-round-trip float
                // printer keeps this bitwise faithful.
                None => object.insert("vector", serde::Serialize::to_value(&dense.to_vec())),
                Some(k) => {
                    let entries: Vec<(u32, f64)> = dense
                        .iter()
                        .enumerate()
                        .map(|(v, &p)| (v as u32, p))
                        .collect();
                    object.insert("entries", entries_value(top_entries(entries, k)))
                }
            };
        } else {
            object.insert(
                "residual_mass",
                serde::Serialize::to_value(&answer.residual_mass),
            );
            object.insert("num_pushes", serde::Serialize::to_value(&answer.num_pushes));
            let entries = match top {
                None => entries_value(answer.entries.clone()),
                Some(k) => entries_value(top_entries(answer.entries.clone(), k)),
            };
            object.insert("entries", entries);
        }
        object
    }

    /// `/knn` (`unlinked_only == false`) and `/recommend` (`true`): top-K by
    /// forward·backward score, ties broken by ascending node id.
    fn handle_topk(&self, request: &Request, unlinked_only: bool) -> Response {
        let embedding = match &self.embedding {
            Some(embedding) => embedding,
            None => {
                return error_response(
                    409,
                    "no embedding loaded (start the server with an `embedding` path)",
                )
            }
        };
        let source = match self.parse_source(request) {
            Ok(source) => source,
            Err(response) => return *response,
        };
        let k = match request.query_param("k") {
            None => 10usize,
            Some(raw) => match raw.parse::<usize>() {
                Ok(v) if v > 0 => v,
                _ => {
                    return error_response(
                        400,
                        &format!("`k` must be a positive integer, got `{raw}`"),
                    )
                }
            },
        };
        let n = self.graph.num_nodes();
        let mut scored: Vec<(u32, f64)> = Vec::with_capacity(n.saturating_sub(1));
        for v in 0..n as u32 {
            if v == source {
                continue;
            }
            if unlinked_only && self.graph.has_arc(source, v) {
                continue;
            }
            scored.push((v, embedding.score(source, v)));
        }
        let top = top_entries(scored, k);
        let mut object = serde::Map::new();
        object.insert("source", serde::Serialize::to_value(&source));
        object.insert("k", serde::Serialize::to_value(&k));
        object.insert(
            if unlinked_only {
                "recommendations"
            } else {
                "neighbors"
            },
            entries_value(top),
        );
        json_response(200, serde::Value::Object(object))
    }

    fn parse_source(&self, request: &Request) -> Result<u32, Box<Response>> {
        let raw = request
            .query_param("source")
            .ok_or_else(|| Box::new(error_response(400, "missing required parameter `source`")))?;
        let source: u32 = raw.parse().map_err(|_| {
            Box::new(error_response(
                400,
                &format!("`source` must be a node id, got `{raw}`"),
            ))
        })?;
        let n = self.graph.num_nodes();
        if source as usize >= n {
            return Err(Box::new(error_response(
                400,
                &format!("`source` {source} out of bounds for {n} nodes"),
            )));
        }
        Ok(source)
    }
}

/// Validated `/ppr` query parameters.
struct PprParams {
    source: u32,
    alpha: f64,
    r_max: f64,
    exact: bool,
    top: Option<usize>,
    deadline_ms: u64,
}

/// The inline `trace` block of an `x-trace: 1` response.
fn trace_value(event: &nrp_obs::TraceEvent) -> serde::Value {
    let mut stages = serde::Map::new();
    for (stage, us) in &event.stages {
        stages.insert(*stage, serde::Serialize::to_value(us));
    }
    let mut object = serde::Map::new();
    object.insert("trace_id", serde::Serialize::to_value(&event.trace_id));
    object.insert("total_us", serde::Serialize::to_value(&event.total_us));
    object.insert("stages_us", serde::Value::Object(stages));
    object.insert(
        "stage_sum_us",
        serde::Serialize::to_value(
            &event
                .stages
                .iter()
                .fold(0u64, |acc, (_, us)| acc.saturating_add(*us)),
        ),
    );
    serde::Value::Object(object)
}

/// Parses an optional float query parameter, falling back to `default`.
/// Non-finite values are rejected (they would poison cache keys).
fn parse_float(request: &Request, name: &str, default: f64) -> Result<f64, Box<Response>> {
    match request.query_param(name) {
        None => Ok(default),
        Some(raw) => match raw.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(Box::new(error_response(
                400,
                &format!("`{name}` must be a finite number, got `{raw}`"),
            ))),
        },
    }
}

/// Sorts `(node, score)` pairs by score descending, node ascending, and
/// keeps the first `k`.  Scores are finite (embeddings and PPR vectors are
/// finiteness-checked upstream), so `total_cmp` is a plain ordering here.
fn top_entries(mut entries: Vec<(u32, f64)>, k: usize) -> Vec<(u32, f64)> {
    entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(k);
    entries
}

fn entries_value(entries: Vec<(u32, f64)>) -> serde::Value {
    serde::Value::Array(
        entries
            .into_iter()
            .map(|(node, score)| {
                serde::Value::Array(vec![
                    serde::Serialize::to_value(&node),
                    serde::Serialize::to_value(&score),
                ])
            })
            .collect(),
    )
}

fn json_response(status: u16, value: serde::Value) -> Response {
    // Handler-built values always serialize; if one ever does not (a NaN
    // smuggled into a float field, say), answer 500 rather than panic the
    // worker.
    match serde_json::to_string(&value) {
        Ok(body) => Response::json(status, body.into_bytes()),
        Err(_) => Response::json(
            500,
            br#"{"error":"response serialization failed"}"#.to_vec(),
        ),
    }
}

fn error_response(status: u16, message: &str) -> Response {
    let mut object = serde::Map::new();
    object.insert("error", serde::Value::String(message.to_string()));
    json_response(status, serde::Value::Object(object))
}

/// One single-series unlabeled family for the scrape-time derivations.
fn unlabeled(name: &str, help: &str, kind: MetricKind, value: u64) -> FamilySnapshot {
    FamilySnapshot {
        name: name.into(),
        help: help.into(),
        kind,
        series: vec![SeriesSnapshot {
            labels: Vec::new(),
            value: match kind {
                MetricKind::Gauge => SeriesValue::Gauge(value),
                _ => SeriesValue::Counter(value),
            },
        }],
    }
}

/// The running server: an accept loop plus one thread per connection.
///
/// [`Server::shutdown`] is graceful: the listener stops accepting, every
/// connection finishes the request it is currently serving (idle keep-alive
/// peers are closed at the next [`IDLE_POLL`] tick), the batcher drains its
/// queue, and only then does the call return.
pub struct Server {
    state: Arc<ServeState>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `state.config().addr` and starts accepting.
    pub fn start(state: ServeState) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&state.config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(state);
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::<JoinHandle<()>>::new()));

        let accept_state = Arc::clone(&state);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_connections = Arc::clone(&connections);
        let accept_thread = std::thread::Builder::new()
            .name("nrp-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match stream {
                        Ok(stream) => stream,
                        Err(_) => continue,
                    };
                    accept_state
                        .counters
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    // Admission control: at the in-flight limit, shed the
                    // connection with a minimal 503 instead of spawning a
                    // thread for it.  The accept loop itself never blocks
                    // on a slow peer: the rejection write has a short
                    // timeout and failure to deliver it is the peer's
                    // problem, not ours.
                    if accept_state.inflight.load(Ordering::Relaxed)
                        >= accept_state.config.max_connections
                    {
                        accept_state
                            .counters
                            .conn_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        accept_state.degrade.record_pressure(accept_state.now_ms());
                        reject_connection(stream, accept_state.config.retry_after_secs);
                        continue;
                    }
                    accept_state.inflight.fetch_add(1, Ordering::Relaxed);
                    let conn_state = Arc::clone(&accept_state);
                    let conn_shutdown = Arc::clone(&accept_shutdown);
                    let handle = match std::thread::Builder::new()
                        .name("nrp-serve-conn".into())
                        .spawn(move || {
                            // The gauge drops on every exit path, panics
                            // included — a leaked increment would eat the
                            // admission budget forever.
                            let _gauge = InflightGuard(&conn_state.inflight);
                            handle_connection(&conn_state, stream, conn_shutdown);
                        }) {
                        Ok(handle) => handle,
                        // Thread exhaustion: shed this connection (the
                        // stream drops and closes) and keep accepting.
                        // The guard inside the closure never ran, so the
                        // increment is rolled back here.
                        Err(_) => {
                            accept_state.inflight.fetch_sub(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    let mut guard = lock_unpoisoned(&accept_connections);
                    // Opportunistically reap finished threads so the list
                    // does not grow with connection count.
                    guard.retain(|h| !h.is_finished());
                    // nrp-lint: allow(R001) — live handles ≤ max_connections (inflight gate above)
                    guard.push(handle);
                }
            })?;

        Ok(Self {
            state,
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (counters, cache snapshots) for introspection.
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, stop
    /// the batcher, join every thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *lock_unpoisoned(&self.connections));
        for handle in handles {
            let _ = handle.join();
        }
        self.state.batcher.shutdown();
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // `accept` blocks with no timeout; a self-connection wakes it so it
        // can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped (not shut down) server still stops its threads, just
        // without blocking on the joins it cannot perform here.
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
    }
}

/// Decrements the in-flight connection gauge on drop (any exit path of a
/// connection thread, panics included).
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Sheds one connection at the accept loop: best-effort minimal `503` with
/// `Retry-After`, then close.  Short write timeout so a slow or dead peer
/// cannot stall accepting.
fn reject_connection(stream: TcpStream, retry_after_secs: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut writer = stream;
    let mut response =
        error_response(503, "too many connections").with_retry_after(retry_after_secs);
    response.keep_alive = false;
    let _ = write_response(&mut writer, &response);
}

/// One connection: keep-alive loop reading requests (pipelining falls out
/// of reading exactly one message per iteration) until close, error, idle
/// timeout or shutdown.  Malformed input gets an error *response* where the
/// framing allows one; the thread never panics on wire data.
fn handle_connection(state: &ServeState, stream: TcpStream, shutdown: Arc<AtomicBool>) {
    let limits = state.limits();
    let idle_timeout = Duration::from_millis(state.config.read_timeout_ms.max(1));
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    // Without TCP_NODELAY, Nagle + the peer's delayed ACK turns every
    // response into a ~40ms stall — it dominated p50 before this line.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut idle_deadline = clock::now() + idle_timeout;
    loop {
        match read_request(&mut reader, &limits) {
            Ok(None) => break,
            Ok(Some(request)) => {
                // Failpoint `conn.read`: a socket that dies right after
                // delivering the request bytes.  The peer sees a closed
                // connection and no response — exactly what a reset looks
                // like from the client side.
                if crate::fault::fire("conn.read").is_err() {
                    break;
                }
                let mut response = state.handle(&request);
                // Draining: answer the request in hand, then close.
                response.keep_alive =
                    response.keep_alive && request.keep_alive() && !shutdown.load(Ordering::SeqCst);
                // Failpoint `conn.write`: the socket dies before the
                // response goes out (computed work, lost answer).
                if crate::fault::fire("conn.write").is_err() {
                    break;
                }
                if write_response(&mut writer, &response).is_err() {
                    break;
                }
                if !response.keep_alive {
                    break;
                }
                idle_deadline = clock::now() + idle_timeout;
            }
            Err(error) => {
                if matches!(error, crate::http::HttpError::Idle) {
                    if shutdown.load(Ordering::SeqCst) || clock::now() >= idle_deadline {
                        break;
                    }
                    continue;
                }
                state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                if error.respondable() {
                    let mut response = error_response(error.status(), &error.to_string());
                    response.keep_alive = false;
                    if write_response(&mut writer, &response).is_ok() {
                        // Lingering close: drain whatever the peer is still
                        // sending (e.g. the rest of an oversized header)
                        // before closing, so the kernel does not reset the
                        // connection and destroy the error response in
                        // flight.
                        drain_to_eof(&mut reader);
                    }
                }
                break;
            }
        }
    }
    let _ = writer.flush();
}

/// Reads and discards input until EOF, a hard error, a byte cap, or a short
/// deadline — whichever comes first.  See the lingering-close comment at
/// the call site.
fn drain_to_eof<R: std::io::Read>(reader: &mut R) {
    let mut buffer = [0u8; 4096];
    let mut remaining: usize = 256 * 1024;
    let deadline = clock::now() + Duration::from_millis(500);
    while remaining > 0 && clock::now() < deadline {
        match reader.read(&mut buffer) {
            Ok(0) => break,
            Ok(n) => remaining = remaining.saturating_sub(n),
            // The socket has a short read timeout (IDLE_POLL); keep
            // draining until the overall deadline.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}
