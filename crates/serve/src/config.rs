//! Declarative server configuration, loadable from JSON (see
//! `configs/serve.json` at the repository root for a checked-in sample).

use std::path::Path;

use nrp_core::DanglingPolicy;
use nrp_graph::GraphKind;

/// Everything the server needs to start, with production-sane defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port (the bound address is
    /// printed at startup and exposed via `Server::addr`).
    pub addr: String,
    /// Worker-pool thread budget for batched PPR dispatches.
    pub threads: usize,
    /// Hot-source cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Default PPR decay factor for `/ppr` queries without `alpha=`.
    pub alpha: f64,
    /// Default push residue threshold for `/ppr` queries without `r_max=`.
    pub r_max: f64,
    /// Dangling-node policy applied to every PPR computation.
    pub dangling: DanglingPolicy,
    /// Edge-list path to serve (absent when the caller passes a graph
    /// programmatically, e.g. the fixture mode of `nrp_serve`).
    pub graph: Option<String>,
    /// How to interpret the edge list.
    pub graph_kind: GraphKind,
    /// Path of an embedding saved by `Embedding::save` (enables `/knn` and
    /// `/recommend`).
    pub embedding: Option<String>,
    /// Maximum jobs one batch dispatch drains.
    pub max_batch: usize,
    /// Keep-alive idle timeout per connection, milliseconds.
    pub read_timeout_ms: u64,
    /// Request body cap in bytes.
    pub max_body_bytes: usize,
    /// Default `/ppr` deadline in milliseconds (0 = none); the
    /// `x-deadline-ms` request header overrides it per request.  Expired
    /// requests answer 504.
    pub deadline_ms: u64,
    /// Bounded batcher queue depth; a full queue sheds with 503.
    pub queue_capacity: usize,
    /// Maximum in-flight connections; excess accepts shed with 503.
    pub max_connections: usize,
    /// `Retry-After` seconds advertised on shed (503) answers.
    pub retry_after_secs: u64,
    /// Pressure events (sheds + timeouts) within one window that trigger a
    /// degradation step (0 disables degradation entirely).
    pub degrade_threshold: u64,
    /// Width of the degradation pressure window, milliseconds.
    pub degrade_window_ms: u64,
    /// Quiet time after which the server recovers one degradation level,
    /// milliseconds.
    pub degrade_recover_ms: u64,
    /// Whether the telemetry registry is wired into the hot path.  `false`
    /// hands every subsystem a no-op [`nrp_obs::MetricsHandle`]: `/metrics`
    /// still answers (with only the derived counter families) and the
    /// overhead of instrument updates drops to a null-pointer check.
    pub metrics_enabled: bool,
    /// Ring-buffer capacity of the per-request trace log served at
    /// `GET /debug/traces` (0 disables trace retention; `/ppr` responses
    /// can still opt into an inline trace via the `x-trace: 1` header).
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            threads: 1,
            cache_capacity: 1024,
            alpha: 0.15,
            r_max: 1e-5,
            dangling: DanglingPolicy::SelfLoop,
            graph: None,
            graph_kind: GraphKind::Directed,
            embedding: None,
            max_batch: 256,
            read_timeout_ms: 5_000,
            max_body_bytes: 1024 * 1024,
            deadline_ms: 0,
            queue_capacity: 1024,
            max_connections: 256,
            retry_after_secs: 1,
            degrade_threshold: 32,
            degrade_window_ms: 1_000,
            degrade_recover_ms: 2_000,
            metrics_enabled: true,
            trace_capacity: 256,
        }
    }
}

impl ServeConfig {
    /// Loads a config from a JSON file.
    pub fn from_path(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read serve config `{}`: {e}", path.display()))?;
        Self::from_json(&text)
            .map_err(|e| format!("invalid serve config `{}`: {e}", path.display()))
    }

    /// Parses the JSON form, rejecting unknown fields by name.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value: serde::Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let object = value
            .as_object()
            .ok_or_else(|| format!("expected a config object, got {}", value.kind()))?;
        const FIELDS: &[&str] = &[
            "addr",
            "threads",
            "cache_capacity",
            "alpha",
            "r_max",
            "dangling",
            "graph",
            "graph_kind",
            "embedding",
            "max_batch",
            "read_timeout_ms",
            "max_body_bytes",
            "deadline_ms",
            "queue_capacity",
            "max_connections",
            "retry_after_secs",
            "degrade_threshold",
            "degrade_window_ms",
            "degrade_recover_ms",
            "metrics_enabled",
            "trace_capacity",
        ];
        for (key, _) in object.iter() {
            if !FIELDS.contains(&key) {
                return Err(format!(
                    "unknown serve field `{key}` (expected one of: {})",
                    FIELDS.join(", ")
                ));
            }
        }
        let mut config = ServeConfig::default();
        if let Some(v) = object.get("addr") {
            config.addr = string_field(v, "addr")?;
        }
        if let Some(v) = object.get("threads") {
            config.threads =
                serde::Deserialize::from_value(v).map_err(|e| format!("`threads`: {e}"))?;
        }
        if let Some(v) = object.get("cache_capacity") {
            config.cache_capacity =
                serde::Deserialize::from_value(v).map_err(|e| format!("`cache_capacity`: {e}"))?;
        }
        if let Some(v) = object.get("alpha") {
            config.alpha =
                serde::Deserialize::from_value(v).map_err(|e| format!("`alpha`: {e}"))?;
        }
        if let Some(v) = object.get("r_max") {
            config.r_max =
                serde::Deserialize::from_value(v).map_err(|e| format!("`r_max`: {e}"))?;
        }
        if let Some(v) = object.get("dangling") {
            config.dangling =
                serde::Deserialize::from_value(v).map_err(|e| format!("`dangling`: {e}"))?;
        }
        if let Some(v) = object.get("graph") {
            config.graph = Some(string_field(v, "graph")?);
        }
        if let Some(v) = object.get("graph_kind") {
            let text = string_field(v, "graph_kind")?;
            config.graph_kind = match text.as_str() {
                "directed" => GraphKind::Directed,
                "undirected" => GraphKind::Undirected,
                other => {
                    return Err(format!(
                        "`graph_kind` must be directed|undirected, got `{other}`"
                    ))
                }
            };
        }
        if let Some(v) = object.get("embedding") {
            config.embedding = Some(string_field(v, "embedding")?);
        }
        if let Some(v) = object.get("max_batch") {
            config.max_batch =
                serde::Deserialize::from_value(v).map_err(|e| format!("`max_batch`: {e}"))?;
        }
        if let Some(v) = object.get("read_timeout_ms") {
            config.read_timeout_ms =
                serde::Deserialize::from_value(v).map_err(|e| format!("`read_timeout_ms`: {e}"))?;
        }
        if let Some(v) = object.get("max_body_bytes") {
            config.max_body_bytes =
                serde::Deserialize::from_value(v).map_err(|e| format!("`max_body_bytes`: {e}"))?;
        }
        if let Some(v) = object.get("deadline_ms") {
            config.deadline_ms =
                serde::Deserialize::from_value(v).map_err(|e| format!("`deadline_ms`: {e}"))?;
        }
        if let Some(v) = object.get("queue_capacity") {
            config.queue_capacity =
                serde::Deserialize::from_value(v).map_err(|e| format!("`queue_capacity`: {e}"))?;
        }
        if let Some(v) = object.get("max_connections") {
            config.max_connections =
                serde::Deserialize::from_value(v).map_err(|e| format!("`max_connections`: {e}"))?;
        }
        if let Some(v) = object.get("retry_after_secs") {
            config.retry_after_secs = serde::Deserialize::from_value(v)
                .map_err(|e| format!("`retry_after_secs`: {e}"))?;
        }
        if let Some(v) = object.get("degrade_threshold") {
            config.degrade_threshold = serde::Deserialize::from_value(v)
                .map_err(|e| format!("`degrade_threshold`: {e}"))?;
        }
        if let Some(v) = object.get("degrade_window_ms") {
            config.degrade_window_ms = serde::Deserialize::from_value(v)
                .map_err(|e| format!("`degrade_window_ms`: {e}"))?;
        }
        if let Some(v) = object.get("degrade_recover_ms") {
            config.degrade_recover_ms = serde::Deserialize::from_value(v)
                .map_err(|e| format!("`degrade_recover_ms`: {e}"))?;
        }
        if let Some(v) = object.get("metrics_enabled") {
            config.metrics_enabled = v
                .as_bool()
                .ok_or_else(|| format!("`metrics_enabled` must be a bool, got {}", v.kind()))?;
        }
        if let Some(v) = object.get("trace_capacity") {
            config.trace_capacity =
                serde::Deserialize::from_value(v).map_err(|e| format!("`trace_capacity`: {e}"))?;
        }
        config.validate()?;
        Ok(config)
    }

    /// Checks the numeric ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(format!("`alpha` must be in (0,1), got {}", self.alpha));
        }
        if self.r_max <= 0.0 {
            return Err(format!("`r_max` must be positive, got {}", self.r_max));
        }
        if self.threads == 0 {
            return Err("`threads` must be at least 1".into());
        }
        if self.max_batch == 0 {
            return Err("`max_batch` must be at least 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("`queue_capacity` must be at least 1".into());
        }
        if self.max_connections == 0 {
            return Err("`max_connections` must be at least 1".into());
        }
        if self.degrade_threshold > 0 && self.degrade_window_ms == 0 {
            return Err("`degrade_window_ms` must be positive when degradation is enabled".into());
        }
        Ok(())
    }

    /// Serializes the config as pretty JSON (sample generation and tests).
    pub fn to_json_pretty(&self) -> String {
        let mut object = serde::Map::new();
        object.insert("addr", serde::Value::String(self.addr.clone()));
        object.insert("threads", serde::Serialize::to_value(&self.threads));
        object.insert(
            "cache_capacity",
            serde::Serialize::to_value(&self.cache_capacity),
        );
        object.insert("alpha", serde::Serialize::to_value(&self.alpha));
        object.insert("r_max", serde::Serialize::to_value(&self.r_max));
        object.insert("dangling", serde::Serialize::to_value(&self.dangling));
        if let Some(graph) = &self.graph {
            object.insert("graph", serde::Value::String(graph.clone()));
        }
        object.insert(
            "graph_kind",
            serde::Value::String(
                match self.graph_kind {
                    GraphKind::Directed => "directed",
                    GraphKind::Undirected => "undirected",
                }
                .into(),
            ),
        );
        if let Some(embedding) = &self.embedding {
            object.insert("embedding", serde::Value::String(embedding.clone()));
        }
        object.insert("max_batch", serde::Serialize::to_value(&self.max_batch));
        object.insert(
            "read_timeout_ms",
            serde::Serialize::to_value(&self.read_timeout_ms),
        );
        object.insert(
            "max_body_bytes",
            serde::Serialize::to_value(&self.max_body_bytes),
        );
        object.insert("deadline_ms", serde::Serialize::to_value(&self.deadline_ms));
        object.insert(
            "queue_capacity",
            serde::Serialize::to_value(&self.queue_capacity),
        );
        object.insert(
            "max_connections",
            serde::Serialize::to_value(&self.max_connections),
        );
        object.insert(
            "retry_after_secs",
            serde::Serialize::to_value(&self.retry_after_secs),
        );
        object.insert(
            "degrade_threshold",
            serde::Serialize::to_value(&self.degrade_threshold),
        );
        object.insert(
            "degrade_window_ms",
            serde::Serialize::to_value(&self.degrade_window_ms),
        );
        object.insert(
            "degrade_recover_ms",
            serde::Serialize::to_value(&self.degrade_recover_ms),
        );
        object.insert("metrics_enabled", serde::Value::Bool(self.metrics_enabled));
        object.insert(
            "trace_capacity",
            serde::Serialize::to_value(&self.trace_capacity),
        );
        serde_json::to_string_pretty(&serde::Value::Object(object))
            .expect("serve configs serialize to JSON")
    }
}

fn string_field(value: &serde::Value, name: &str) -> Result<String, String> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("`{name}` must be a string, got {}", value.kind()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let config = ServeConfig::default();
        assert!(config.validate().is_ok());
        assert_eq!(config.alpha, 0.15);
        assert_eq!(config.cache_capacity, 1024);
    }

    #[test]
    fn parses_every_field() {
        let config = ServeConfig::from_json(
            r#"{
                "addr": "127.0.0.1:0",
                "threads": 4,
                "cache_capacity": 64,
                "alpha": 0.2,
                "r_max": 1e-4,
                "dangling": "teleport",
                "graph": "data/graph.txt",
                "graph_kind": "undirected",
                "embedding": "data/embedding.json",
                "max_batch": 32,
                "read_timeout_ms": 250,
                "max_body_bytes": 4096,
                "deadline_ms": 150,
                "queue_capacity": 8,
                "max_connections": 12,
                "retry_after_secs": 3,
                "degrade_threshold": 5,
                "degrade_window_ms": 400,
                "degrade_recover_ms": 900,
                "metrics_enabled": false,
                "trace_capacity": 32
            }"#,
        )
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.threads, 4);
        assert_eq!(config.cache_capacity, 64);
        assert_eq!(config.alpha, 0.2);
        assert_eq!(config.dangling, DanglingPolicy::Teleport);
        assert_eq!(config.graph.as_deref(), Some("data/graph.txt"));
        assert_eq!(config.graph_kind, GraphKind::Undirected);
        assert_eq!(config.max_batch, 32);
        assert_eq!(config.deadline_ms, 150);
        assert_eq!(config.queue_capacity, 8);
        assert_eq!(config.max_connections, 12);
        assert_eq!(config.retry_after_secs, 3);
        assert_eq!(config.degrade_threshold, 5);
        assert_eq!(config.degrade_window_ms, 400);
        assert_eq!(config.degrade_recover_ms, 900);
        assert!(!config.metrics_enabled);
        assert_eq!(config.trace_capacity, 32);
    }

    #[test]
    fn round_trips_through_pretty_json() {
        let config = ServeConfig {
            graph: Some("g.txt".into()),
            embedding: Some("e.json".into()),
            ..ServeConfig::default()
        };
        let rendered = config.to_json_pretty();
        assert_eq!(ServeConfig::from_json(&rendered).unwrap(), config);
    }

    #[test]
    fn checked_in_sample_config_parses() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../configs/serve.json");
        let config = ServeConfig::from_path(&path).expect("configs/serve.json stays valid");
        assert_eq!(config.threads, 4);
        assert_eq!(config.graph.as_deref(), Some("data/graph.edges"));
    }

    #[test]
    fn rejects_unknown_and_invalid_fields() {
        let err = ServeConfig::from_json(r#"{"adrr": "x"}"#).unwrap_err();
        assert!(err.contains("adrr"), "{err}");
        let err = ServeConfig::from_json(r#"{"alpha": 1.5}"#).unwrap_err();
        assert!(err.contains("alpha"), "{err}");
        let err = ServeConfig::from_json(r#"{"graph_kind": "sideways"}"#).unwrap_err();
        assert!(err.contains("sideways"), "{err}");
        let err = ServeConfig::from_json(r#"{"threads": 0}"#).unwrap_err();
        assert!(err.contains("threads"), "{err}");
        let err = ServeConfig::from_json(r#"{"queue_capacity": 0}"#).unwrap_err();
        assert!(err.contains("queue_capacity"), "{err}");
        let err = ServeConfig::from_json(r#"{"max_connections": 0}"#).unwrap_err();
        assert!(err.contains("max_connections"), "{err}");
        let err = ServeConfig::from_json(r#"{"degrade_window_ms": 0}"#).unwrap_err();
        assert!(err.contains("degrade_window_ms"), "{err}");
        let err = ServeConfig::from_json(r#"{"metrics_enabled": "yes"}"#).unwrap_err();
        assert!(err.contains("metrics_enabled"), "{err}");
        assert!(ServeConfig::from_json("not json").is_err());
    }
}
