//! Poison-tolerant locking for the serving request path.
//!
//! A `Mutex` is poisoned when a thread panics while holding it.  On the
//! request path that must not cascade: the panicking request already got a
//! 500, and the data under every lock here (cache slabs, counters, the
//! connection registry) stays structurally valid because each critical
//! section only becomes observable once complete.  Propagating the poison
//! instead would turn one bad request into a dead worker — exactly the
//! failure mode the panic-freedom contract (rule P001) exists to prevent.

use std::sync::{Mutex, MutexGuard};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let mutex = Mutex::new(7u32);
        // Poison it: panic while holding the guard, on another thread.
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = mutex.lock().unwrap();
                    panic!("poison the lock");
                })
                .join()
        });
        assert!(result.is_err(), "the poisoning thread panicked");
        assert!(mutex.is_poisoned());
        let mut guard = lock_unpoisoned(&mutex);
        assert_eq!(*guard, 7);
        *guard += 1;
        drop(guard);
        assert_eq!(*lock_unpoisoned(&mutex), 8);
    }
}
