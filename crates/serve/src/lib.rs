//! # nrp-serve — online embedding/PPR serving
//!
//! The offline pipeline (`nrp-core`) produces embeddings; this crate is the
//! *online* half: a long-lived process that loads a graph and a precomputed
//! [`Embedding`](nrp_core::Embedding), keeps a warm worker pool, and
//! answers queries over HTTP/1.1 — hand-rolled on `std::net`, zero
//! external dependencies, matching the workspace's vendored-only policy.
//!
//! ## Endpoints
//!
//! - `GET /ppr?source=…[&alpha=…&r_max=…&mode=push|exact&top=…]` —
//!   single-source PPR through the request batcher and hot-source cache.
//! - `GET /knn?source=…&k=…` — top-K neighbours by embedding score.
//! - `GET /recommend?source=…&k=…` — top-K *unlinked* candidates.
//! - `GET /healthz`, `GET /stats` — liveness and counters.
//! - `GET /metrics` — Prometheus text exposition of every instrument.
//! - `GET /debug/traces` — JSONL ring of recent per-request traces.
//!
//! ## Production concerns reproduced here
//!
//! - **Request batching** ([`batcher`]): concurrent `/ppr` queries coalesce
//!   into one multi-source dispatch over the shared
//!   [`WorkerPool`](nrp_core::context::EmbedContext), reusing per-worker
//!   push workspaces.
//! - **Hot-source caching** ([`cache`]): slab-backed LRU keyed by the exact
//!   bit patterns of the query parameters, with hit/miss counters.
//! - **Graceful shutdown** ([`server`]): in-flight requests drain before
//!   [`Server::shutdown`] returns.
//! - **Overload resilience**: per-request deadlines answered with `504`
//!   ([`batcher`]), bounded-queue and connection-limit load shedding with
//!   `503` + `Retry-After` ([`server`]), and graceful degradation under
//!   sustained pressure ([`degrade`]) — exact-mode `/ppr` downgrades to
//!   forward push, then to cache-only answers, with the state visible in
//!   `/healthz` and `/stats`.
//! - **Fault injection** ([`fault`]): a deterministic, seeded failpoint
//!   registry (behind the `failpoints` cargo feature) that the chaos e2e
//!   suite uses to inject delays, I/O errors, and worker panics at named
//!   sites with a reproducible schedule.
//! - **Client resilience** ([`client`]): keep-alive reconnects, jittered
//!   exponential backoff with a retry budget honouring `Retry-After`, and
//!   a circuit breaker.
//! - **Observability** ([`server`], `nrp-obs`): a process-wide metrics
//!   registry (lock-free counters/gauges/histograms) exported at
//!   `/metrics`, per-endpoint latency/shed/timeout attribution in
//!   `/stats`, and structured per-request traces — `x-trace: 1` on
//!   `/ppr` returns the stage breakdown (parse → admission → queue wait
//!   → batch assembly → kernel compute → serialize) inline, and a
//!   bounded ring of recent traces is served at `/debug/traces`.  Trace
//!   IDs come from a counter, never a clock, and timing never feeds back
//!   into answers, so determinism is untouched.
//! - **Determinism**: a `/ppr` answer is bitwise identical whether it came
//!   from the cache, a coalesced batch, or a direct library call — floats
//!   survive the JSON wire via shortest-round-trip formatting.  Shedding,
//!   deadlines, and degradation only ever *redirect or abort* work; they
//!   never alter a value that is returned.
//!
//! The `bench_serve` binary in `nrp-bench` drives this server with a
//! Zipf-skewed closed-loop load (p50/p99 latency and qps) plus an
//! open-loop overload scenario (shed rate, goodput, bounded p99).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod client;
pub mod config;
pub mod degrade;
pub mod fault;
pub mod fixture;
pub mod http;
pub mod server;
pub mod sync;

pub use batcher::{Batcher, JobTiming, PprAnswer, SubmitError};
pub use cache::{CacheKey, CacheSnapshot, PprCache};
pub use client::{
    get_json_once, get_text_once, CircuitBreaker, HttpClient, ResilientClient, RetryPolicy,
};
pub use config::ServeConfig;
pub use degrade::{DegradeController, DegradeLevel};
pub use fixture::fixture;
pub use server::{ServeState, Server};
