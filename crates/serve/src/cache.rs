//! Hot-source PPR cache: a slab-backed LRU with hit/miss counters.
//!
//! Power-law query traffic means a small cache absorbs most of the load —
//! the whole premise of the serving layer's warm path.  Keys identify a PPR
//! computation exactly (source node plus the *bit patterns* of `alpha` and
//! `r_max`, plus the push/exact mode flag), so a hit returns a vector
//! bitwise identical to recomputing: nothing about the entry is approximate
//! or re-derived.
//!
//! The list is intrusive over a slab (`Vec` of nodes with prev/next
//! indices), so `get`/`insert` are `O(1)` with no per-operation allocation
//! once the slab is full.

use std::collections::HashMap;
use std::sync::Arc;

use crate::batcher::PprAnswer;

/// Sentinel for "no neighbour" in the intrusive list.
const NONE: usize = usize::MAX;

/// Identity of one PPR computation.  Floats are keyed by bit pattern —
/// `0.15_f64` and the nearest representable neighbour are different
/// computations, and NaN never reaches a key (parameters are validated at
/// the handler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Source node.
    pub source: u32,
    /// `alpha.to_bits()`.
    pub alpha_bits: u64,
    /// `r_max.to_bits()` (push mode) or the tolerance bits (exact mode).
    pub r_max_bits: u64,
    /// True for exact power iteration, false for forward push.
    pub exact: bool,
}

impl CacheKey {
    /// Builds a key from the run parameters.
    pub fn new(source: u32, alpha: f64, r_max: f64, exact: bool) -> Self {
        Self {
            source,
            alpha_bits: alpha.to_bits(),
            r_max_bits: r_max.to_bits(),
            exact,
        }
    }

    /// The decay factor the key encodes.
    pub fn alpha(&self) -> f64 {
        f64::from_bits(self.alpha_bits)
    }

    /// The residue threshold (push) or tolerance (exact) the key encodes.
    pub fn r_max(&self) -> f64 {
        f64::from_bits(self.r_max_bits)
    }
}

/// Counter snapshot of one cache, as served by `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Live entries right now.
    pub len: usize,
    /// Maximum live entries.
    pub capacity: usize,
}

struct Slot {
    key: CacheKey,
    value: Arc<PprAnswer>,
    prev: usize,
    next: usize,
}

/// The LRU cache.  Not internally synchronized — the server wraps it in a
/// `Mutex` (hold times are `O(1)` pointer swaps, never a PPR computation).
pub struct PprCache {
    capacity: usize,
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl PprCache {
    /// A cache holding up to `capacity` answers.  Capacity 0 disables
    /// caching entirely (every lookup misses, inserts are dropped) — the
    /// "cold" regime of the serve benchmarks.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unlinks slot `i` from the recency list.
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links slot `i` at the most-recently-used end.
    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NONE;
        self.slots[i].next = self.head;
        if self.head != NONE {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NONE {
            self.tail = i;
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.  Counts the lookup
    /// either way.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<PprAnswer>> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.detach(i);
                self.push_front(i);
                Some(Arc::clone(&self.slots[i].value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching recency or counters (used by `/stats`
    /// style introspection and tests).
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<PprAnswer>> {
        self.map.get(key).map(|&i| Arc::clone(&self.slots[i].value))
    }

    /// Inserts `value` under `key`, evicting the least-recently-used entry
    /// if the cache is full.  Re-inserting an existing key replaces its
    /// value and refreshes recency.
    pub fn insert(&mut self, key: CacheKey, value: Arc<PprAnswer>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.detach(i);
            self.push_front(i);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NONE, "full cache has a tail");
            self.detach(lru);
            self.map.remove(&self.slots[lru].key);
            // nrp-lint: allow(R001) — every push pairs a map eviction, so len ≤ capacity
            self.free.push(lru);
            self.evictions += 1;
        }
        let slot = Slot {
            key,
            value,
            prev: NONE,
            next: NONE,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        self.insertions += 1;
    }

    /// The current counters and occupancy.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            len: self.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(tag: usize) -> Arc<PprAnswer> {
        Arc::new(PprAnswer {
            entries: vec![(tag as u32, 1.0)],
            dense: None,
            residual_mass: 0.0,
            num_pushes: tag,
        })
    }

    fn key(source: u32) -> CacheKey {
        CacheKey::new(source, 0.15, 1e-5, false)
    }

    #[test]
    fn key_round_trips_float_bits() {
        let k = CacheKey::new(3, 0.15, 1e-5, true);
        assert_eq!(k.alpha(), 0.15);
        assert_eq!(k.r_max(), 1e-5);
        assert_ne!(key(3), CacheKey::new(3, 0.15, 1e-5, true), "mode is keyed");
        assert_ne!(key(3), CacheKey::new(3, 0.150000001, 1e-5, false));
    }

    #[test]
    fn inserts_and_hits() {
        let mut cache = PprCache::new(2);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), answer(1));
        let got = cache.get(&key(1)).unwrap();
        assert_eq!(got.num_pushes, 1);
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.insertions), (1, 1, 1));
        assert_eq!(snap.len, 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = PprCache::new(2);
        cache.insert(key(1), answer(1));
        cache.insert(key(2), answer(2));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), answer(3));
        assert!(cache.peek(&key(2)).is_none(), "2 was evicted");
        assert!(cache.peek(&key(1)).is_some());
        assert!(cache.peek(&key(3)).is_some());
        assert_eq!(cache.snapshot().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_reuses_slots() {
        let mut cache = PprCache::new(3);
        for round in 0..10u32 {
            for s in 0..3u32 {
                cache.insert(key(round * 3 + s), answer(s as usize));
            }
        }
        assert_eq!(cache.len(), 3);
        assert!(cache.slots.len() <= 4, "slab stays bounded by capacity");
        assert_eq!(cache.snapshot().evictions, 27);
    }

    #[test]
    fn reinsert_replaces_and_refreshes() {
        let mut cache = PprCache::new(2);
        cache.insert(key(1), answer(1));
        cache.insert(key(2), answer(2));
        cache.insert(key(1), answer(7));
        cache.insert(key(3), answer(3));
        // 2 was the LRU entry after 1's refresh.
        assert!(cache.peek(&key(2)).is_none());
        assert_eq!(cache.peek(&key(1)).unwrap().num_pushes, 7);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = PprCache::new(0);
        cache.insert(key(1), answer(1));
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.len(), 0);
        let snap = cache.snapshot();
        assert_eq!(snap.insertions, 0);
        assert_eq!(snap.misses, 1);
    }
}
