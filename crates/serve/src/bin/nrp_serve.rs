//! The `nrp_serve` daemon.
//!
//! ```text
//! nrp_serve --config configs/serve.json      # serve a real graph
//! nrp_serve --fixture 500 --addr 127.0.0.1:0 # self-contained demo graph
//! ```
//!
//! Runs until stdin reaches EOF or a line reading `shutdown` arrives, then
//! drains in-flight requests and exits — so `echo shutdown | nrp_serve …`
//! and closing the pipe both stop it cleanly.

use std::path::Path;
use std::process::ExitCode;

use nrp_core::Embedding;
use nrp_serve::{fixture, ServeConfig, ServeState, Server};

const USAGE: &str = "usage: nrp_serve [--config <serve.json>] [--fixture <nodes>] \
[--addr <host:port>] [--threads <n>]";

struct Options {
    config: Option<String>,
    fixture_nodes: Option<usize>,
    addr: Option<String>,
    threads: Option<usize>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        config: None,
        fixture_nodes: None,
        addr: None,
        threads: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--config" => options.config = Some(value("--config")?),
            "--fixture" => {
                let raw = value("--fixture")?;
                options.fixture_nodes = Some(
                    raw.parse()
                        .map_err(|_| format!("--fixture expects a node count, got `{raw}`"))?,
                );
            }
            "--addr" => options.addr = Some(value("--addr")?),
            "--threads" => {
                let raw = value("--threads")?;
                options.threads = Some(
                    raw.parse()
                        .map_err(|_| format!("--threads expects an integer, got `{raw}`"))?,
                );
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_options(&args)?;

    let mut config = match &options.config {
        Some(path) => ServeConfig::from_path(Path::new(path))?,
        None => ServeConfig::default(),
    };
    if let Some(addr) = options.addr {
        config.addr = addr;
    }
    if let Some(threads) = options.threads {
        config.threads = threads;
    }
    config.validate()?;

    let (graph, embedding) = match (options.fixture_nodes, &config.graph) {
        (Some(nodes), _) => {
            eprintln!("building fixture graph ({nodes} nodes) and embedding…");
            let (graph, embedding) = fixture(nodes, 42);
            (graph, Some(embedding))
        }
        (None, Some(path)) => {
            let graph = nrp_graph::io::read_edge_list(path, config.graph_kind)
                .map_err(|e| format!("cannot load graph `{path}`: {e}"))?;
            let embedding = match &config.embedding {
                Some(path) => Some(
                    Embedding::load(path)
                        .map_err(|e| format!("cannot load embedding `{path}`: {e}"))?,
                ),
                None => None,
            };
            (graph, embedding)
        }
        (None, None) => {
            return Err(format!(
                "no graph to serve: pass --fixture <nodes> or a config with a `graph` path\n{USAGE}"
            ))
        }
    };

    eprintln!(
        "serving {} nodes / {} arcs ({} embedding) on {} threads",
        graph.num_nodes(),
        graph.num_arcs(),
        if embedding.is_some() { "with" } else { "no" },
        config.threads,
    );
    eprintln!(
        "resilience: deadline {}ms, queue {}, max-conn {}, degrade {} (window {}ms, recover {}ms)",
        config.deadline_ms,
        config.queue_capacity,
        config.max_connections,
        if config.degrade_threshold > 0 {
            format!("after {} sheds", config.degrade_threshold)
        } else {
            "off".into()
        },
        config.degrade_window_ms,
        config.degrade_recover_ms,
    );
    let server = Server::start(ServeState::new(graph, embedding, config))
        .map_err(|e| format!("cannot start server: {e}"))?;
    // The load generator and smoke scripts scrape this exact line for the
    // bound (possibly ephemeral) port.
    println!("nrp-serve listening on {}", server.addr());

    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "shutdown" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    eprintln!("shutting down (draining in-flight requests)…");
    server.shutdown();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
