//! Request batching: concurrent PPR queries coalesce into one multi-source
//! dispatch on the shared worker pool.
//!
//! Connection threads never compute PPR themselves — they submit a
//! [`CacheKey`] to the batcher and block on a private reply channel.  A
//! single dispatcher thread drains everything queued at that moment into
//! one batch, deduplicates identical keys (two clients asking for the same
//! hot source share one computation), answers what it can from the cache,
//! and computes the remaining *unique* sources with a single
//! `par_chunk_map_exec` dispatch over the context's persistent
//! [`WorkerPool`](nrp_core::parallel::WorkerPool).  Each source's push runs
//! sequentially inside one worker (reusing that worker's thread-local
//! [`PushWorkspace`]), so every per-source result is bitwise identical to a
//! standalone computation — batching moves wall-clock, never values.
//!
//! # Overload behaviour
//!
//! The submission queue is **bounded** ([`Batcher::new`] takes its
//! capacity): when the dispatcher falls behind, [`Batcher::submit`] fails
//! fast with [`SubmitError::QueueFull`] instead of queueing unboundedly —
//! the server turns that into `503` + `Retry-After`.  A request may also
//! carry a deadline ([`Batcher::submit_with_deadline`]): the waiter gives
//! up with [`SubmitError::DeadlineExceeded`] when it expires (`504`), the
//! dispatcher sheds queued jobs whose deadline already passed without
//! computing them, and exact-mode batches propagate the waiters' deadline
//! into the power iteration through [`EmbedContext::with_deadline`] so
//! abandoned work stops early.  Aborting never alters values: a computation
//! either completes bitwise-identically or returns no answer at all.
//!
//! Worker panics (real bugs, or injected via the `failpoints` registry at
//! the `batcher.compute` site) are caught per source: the affected key
//! answers [`SubmitError::WorkerPanic`], every other key in the batch is
//! unaffected, and the dispatcher keeps serving.
//!
//! # Telemetry
//!
//! The dispatcher attributes every answered job's latency to three stages
//! ([`JobTiming`]): time queued behind other work, time spent assembling
//! the batch (dedup + cache probe), and time inside the PPR kernel.
//! [`Batcher::submit_traced`] returns that breakdown alongside the answer;
//! the plain submit paths discard it.  When the [`EmbedContext`] carries a
//! live [`MetricsHandle`](nrp_obs::MetricsHandle), the same numbers feed
//! the `nrp_batch_*` instrument families (queue depth, batch size,
//! queue-wait and compute histograms).  Timing is observability only: it
//! never enters [`PprAnswer`] or the cache, so answers stay bitwise
//! identical with telemetry on, off, or absent.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use nrp_core::parallel::par_chunk_map_exec;
use nrp_core::ppr::single_source_ppr_ctx;
use nrp_core::push::{forward_push_into, PushWorkspace};
use nrp_core::{DanglingPolicy, EmbedContext, NrpError};
use nrp_obs::{clock, Gauge, Histogram};

use crate::sync::lock_unpoisoned;
use nrp_graph::Graph;

use crate::cache::{CacheKey, PprCache};

std::thread_local! {
    // One push workspace per worker thread (the pool's threads persist, so
    // each warms up once and then pushes allocation-free).
    static PUSH_WORKSPACE: RefCell<PushWorkspace> = RefCell::new(PushWorkspace::new());
}

/// One computed single-source PPR answer, shared between the cache and all
/// waiters via `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct PprAnswer {
    /// Push mode: `(node, estimate)` pairs ascending by node (empty in
    /// exact mode).
    pub entries: Vec<(u32, f64)>,
    /// Exact mode: the dense PPR vector (absent in push mode).
    pub dense: Option<Vec<f64>>,
    /// Residual probability mass left unconverted (0 in exact mode).
    pub residual_mass: f64,
    /// Push operations performed (0 in exact mode).
    pub num_pushes: usize,
}

/// Why a [`Batcher::submit`] returned no answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue was full — shed this request
    /// (`503` + `Retry-After`).
    QueueFull,
    /// The request's deadline expired before the answer was ready (`504`).
    DeadlineExceeded,
    /// The batcher is shutting down (`503`).
    ShuttingDown,
    /// The computation for this key panicked; other keys were unaffected
    /// (`500`).
    WorkerPanic,
    /// The computation failed (invalid source, injected I/O error, ...).
    Failed(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue is full"),
            SubmitError::DeadlineExceeded => write!(f, "deadline exceeded"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::WorkerPanic => write!(f, "worker panicked during computation"),
            SubmitError::Failed(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Where one answered job's wall-clock went, in microseconds.
///
/// Returned by [`Batcher::submit_traced`] next to the answer.  The three
/// stages are disjoint sub-intervals of the waiter's blocking time, so
/// their sum is bounded by the latency the waiter itself measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobTiming {
    /// From submission until the dispatcher drained this job into a batch.
    pub queue_wait_us: u64,
    /// Batch assembly: deadline shedding, dedup, and the cache probe for
    /// the batch this job rode in (shared by every job of the batch).
    pub assembly_us: u64,
    /// Inside the PPR kernel for this job's key (0 for a cache hit).
    /// Coalesced waiters report the shared computation's time: each of them
    /// really did block for it.
    pub compute_us: u64,
}

/// Counter snapshot of the batcher, as served by `/stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSnapshot {
    /// Dispatcher wake-ups that processed at least one job.
    pub batches: u64,
    /// Jobs submitted in total.
    pub jobs: u64,
    /// Jobs that shared a computation with another job of the same batch
    /// (identical key submitted concurrently).
    pub coalesced: u64,
    /// Largest single batch seen.
    pub max_batch: u64,
    /// Unique keys actually computed (not answered by the cache).
    pub computed: u64,
    /// Queued jobs shed by the dispatcher because their deadline had
    /// already expired when the batch was drained.
    pub expired: u64,
    /// Per-key computations that panicked (caught; the dispatcher
    /// survived).
    pub panics: u64,
    /// Jobs currently queued, waiting for the dispatcher to drain them.
    pub queue_depth: u64,
}

#[derive(Default)]
struct BatchCounters {
    batches: AtomicU64,
    jobs: AtomicU64,
    coalesced: AtomicU64,
    max_batch: AtomicU64,
    computed: AtomicU64,
    expired: AtomicU64,
    panics: AtomicU64,
    /// Jobs admitted but not yet drained into a batch (mirrors the
    /// `nrp_batch_queue_depth` gauge so `/stats` works with metrics off).
    depth: AtomicU64,
}

/// The batcher's obs instruments; every handle is a no-op when metrics are
/// disabled, so the hot path pays one null check per update.
#[derive(Clone, Default)]
struct BatcherMetrics {
    queue_depth: Gauge,
    batch_size: Histogram,
    queue_wait_us: Histogram,
    compute_us: Histogram,
}

type Reply = Result<Arc<PprAnswer>, SubmitError>;
type TracedReply = Result<(Arc<PprAnswer>, JobTiming), SubmitError>;

struct Job {
    key: CacheKey,
    deadline: Option<Instant>,
    /// When the waiter enqueued this job (queue-wait attribution).
    submitted: Instant,
    reply: SyncSender<TracedReply>,
}

/// The batching dispatcher.  Owns one worker thread for its lifetime;
/// [`Batcher::shutdown`] drains every queued job before the thread exits,
/// so no submitted request is ever dropped unanswered.
pub struct Batcher {
    tx: Mutex<Option<SyncSender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    counters: Arc<BatchCounters>,
    metrics: BatcherMetrics,
}

impl Batcher {
    /// Spawns the dispatcher.  `ctx` supplies the execution policy (thread
    /// budget plus persistent pool) every batch dispatches on; `max_batch`
    /// caps how many queued jobs one dispatch drains; `queue_capacity`
    /// bounds how many jobs may wait — submissions beyond it shed with
    /// [`SubmitError::QueueFull`].
    pub fn new(
        graph: Arc<Graph>,
        policy: DanglingPolicy,
        ctx: EmbedContext,
        cache: Arc<Mutex<PprCache>>,
        max_batch: usize,
        queue_capacity: usize,
    ) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_capacity.max(1));
        let counters = Arc::new(BatchCounters::default());
        let worker_counters = Arc::clone(&counters);
        let max_batch = max_batch.max(1);
        // Register the batcher's instrument families on the context's
        // metrics handle (no-op handles yield no-op instruments).
        let obs = ctx.metrics();
        let metrics = BatcherMetrics {
            queue_depth: obs.gauge(
                "nrp_batch_queue_depth",
                "Jobs admitted to the batcher but not yet drained into a batch.",
            ),
            batch_size: obs.histogram(
                "nrp_batch_batch_size",
                "Jobs drained per dispatcher wake-up (before deadline shedding).",
            ),
            queue_wait_us: obs.histogram(
                "nrp_batch_queue_wait_us",
                "Microseconds a job waited in the queue before its batch was drained.",
            ),
            compute_us: obs.histogram(
                "nrp_batch_compute_us",
                "Microseconds one unique key spent inside the PPR kernel.",
            ),
        };
        let worker_metrics = metrics.clone();
        let worker = std::thread::Builder::new()
            .name("nrp-serve-batcher".into())
            .spawn(move || {
                dispatch_loop(
                    rx,
                    graph,
                    policy,
                    ctx,
                    cache,
                    worker_counters,
                    worker_metrics,
                    max_batch,
                )
            })
            // nrp-lint: allow(P001) — startup path, not the request path:
            // `Batcher::new` runs before the listener accepts its first
            // connection, and a process that cannot spawn its one
            // dispatcher thread has nothing to serve.
            .expect("spawning the batcher thread");
        Self {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            counters,
            metrics,
        }
    }

    /// Submits one PPR computation and blocks until its answer is ready
    /// (from the cache, a coalesced neighbour, or a fresh dispatch).
    pub fn submit(&self, key: CacheKey) -> Reply {
        self.submit_with_deadline(key, None)
    }

    /// Like [`Batcher::submit`], but gives up with
    /// [`SubmitError::DeadlineExceeded`] once `deadline` passes.  The
    /// dispatcher may still finish (and cache) the computation; the answer
    /// is simply no longer delivered to this waiter.
    pub fn submit_with_deadline(&self, key: CacheKey, deadline: Option<Instant>) -> Reply {
        self.submit_traced(key, deadline).map(|(answer, _)| answer)
    }

    /// Like [`Batcher::submit_with_deadline`], but also returns where the
    /// blocking time went ([`JobTiming`]).  The timing rides next to the
    /// answer, never inside it: cached and traced answers stay bitwise
    /// identical.
    pub fn submit_traced(&self, key: CacheKey, deadline: Option<Instant>) -> TracedReply {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        // Clone the sender out of the mutex so the channel send happens
        // without holding `tx` (K003).  An in-flight clone keeps the
        // channel connected just long enough for this job to enqueue.
        let tx = lock_unpoisoned(&self.tx)
            .clone()
            .ok_or(SubmitError::ShuttingDown)?;
        // `try_send` is the admission decision: a full queue sheds *now*
        // instead of parking this connection thread behind unbounded work.
        match tx.try_send(Job {
            key,
            deadline,
            submitted: clock::now(),
            reply: reply_tx,
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => return Err(SubmitError::QueueFull),
            Err(TrySendError::Disconnected(_)) => return Err(SubmitError::ShuttingDown),
        }
        self.counters.jobs.fetch_add(1, Ordering::Relaxed);
        self.counters.depth.fetch_add(1, Ordering::Relaxed);
        self.metrics.queue_depth.add(1);
        match deadline {
            None => reply_rx.recv().unwrap_or(Err(SubmitError::ShuttingDown)),
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(clock::now());
                match reply_rx.recv_timeout(remaining) {
                    Ok(reply) => reply,
                    Err(mpsc::RecvTimeoutError::Timeout) => Err(SubmitError::DeadlineExceeded),
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(SubmitError::ShuttingDown),
                }
            }
        }
    }

    /// The current counters.
    pub fn snapshot(&self) -> BatchSnapshot {
        BatchSnapshot {
            batches: self.counters.batches.load(Ordering::Relaxed),
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            max_batch: self.counters.max_batch.load(Ordering::Relaxed),
            computed: self.counters.computed.load(Ordering::Relaxed),
            expired: self.counters.expired.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
            queue_depth: self.counters.depth.load(Ordering::Relaxed),
        }
    }

    /// Stops the dispatcher: new submissions fail fast, every job already
    /// queued is still answered, then the thread exits and is joined.
    pub fn shutdown(&self) {
        let tx = lock_unpoisoned(&self.tx).take();
        drop(tx); // Disconnects the channel once queued jobs drain.
                  // Take the handle in one statement (the guard is a temporary) and
                  // join *after* the lock is released: joining under `worker` would
                  // block every concurrent shutdown for the full drain (K003).
        let worker = lock_unpoisoned(&self.worker).take();
        if let Some(worker) = worker {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-key bookkeeping while a batch is in flight.
struct Pending {
    /// Each waiter's reply channel, paired with the queue wait that waiter
    /// accrued before the drain (per-waiter: two coalesced jobs for the
    /// same key were enqueued at different moments).
    replies: Vec<(SyncSender<TracedReply>, u64)>,
    /// Latest deadline among this key's waiters (the computation is useful
    /// until the *last* waiter gives up).
    deadline: Option<Instant>,
    /// At least one waiter has no deadline, so the computation must run to
    /// completion regardless.
    unbounded: bool,
}

#[allow(clippy::too_many_arguments)]
fn dispatch_loop(
    rx: Receiver<Job>,
    graph: Arc<Graph>,
    policy: DanglingPolicy,
    ctx: EmbedContext,
    cache: Arc<Mutex<PprCache>>,
    counters: Arc<BatchCounters>,
    metrics: BatcherMetrics,
    max_batch: usize,
) {
    // `recv` returns queued jobs even after every sender is dropped, so the
    // shutdown path drains naturally: the loop ends only once the channel is
    // both disconnected and empty.
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        counters
            .depth
            .fetch_sub(batch.len() as u64, Ordering::Relaxed);
        metrics.queue_depth.sub(batch.len() as u64);
        metrics.batch_size.observe(batch.len() as u64);

        // The drain instant ends every drained job's queue wait and starts
        // the batch-assembly stage.
        let drained_at = clock::now();
        if metrics.queue_wait_us.is_active() {
            for job in &batch {
                metrics.queue_wait_us.observe(clock::duration_as_micros(
                    drained_at.saturating_duration_since(job.submitted),
                ));
            }
        }

        // Shed queued jobs that already missed their deadline: the waiter
        // has (or is about to) time out on its own, and computing the
        // answer would only delay the still-live jobs behind it.
        let mut expired: Vec<SyncSender<TracedReply>> = Vec::with_capacity(batch.len());
        batch.retain(|job| {
            let dead = job.deadline.is_some_and(|d| drained_at >= d);
            if dead {
                expired.push(job.reply.clone());
            }
            !dead
        });
        if !expired.is_empty() {
            counters
                .expired
                .fetch_add(expired.len() as u64, Ordering::Relaxed);
            for reply in expired {
                let _ = reply.send(Err(SubmitError::DeadlineExceeded));
            }
        }
        if batch.is_empty() {
            continue;
        }

        // Group identical keys: first-seen order keeps the dispatch
        // deterministic in batch composition (not that results depend on it).
        let mut unique: Vec<CacheKey> = Vec::with_capacity(batch.len());
        let mut waiters: HashMap<CacheKey, Pending> = HashMap::new();
        for job in batch {
            let entry = waiters.entry(job.key).or_insert_with(|| Pending {
                replies: Vec::new(),
                deadline: None,
                unbounded: false,
            });
            if entry.replies.is_empty() {
                unique.push(job.key);
            } else {
                counters.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            match job.deadline {
                Some(d) => entry.deadline = Some(entry.deadline.map_or(d, |cur| cur.max(d))),
                None => entry.unbounded = true,
            }
            let queue_wait_us =
                clock::duration_as_micros(drained_at.saturating_duration_since(job.submitted));
            // nrp-lint: allow(R001) — one entry per job in the drained batch, ≤ max_batch
            entry.replies.push((job.reply, queue_wait_us));
        }

        // Answer what the cache already holds.  Replies go out only after
        // the cache lock is back down: `reply_all` sends on (bounded)
        // channels, and a blocking send under the lock would stall every
        // request thread probing the cache (K003).
        let mut missing: Vec<CacheKey> = Vec::with_capacity(unique.len());
        let mut hits: Vec<(CacheKey, Reply)> = Vec::with_capacity(unique.len());
        {
            let mut cache = lock_unpoisoned(&cache);
            for key in unique {
                match cache.get(&key) {
                    Some(answer) => hits.push((key, Ok(answer))),
                    None => missing.push(key),
                }
            }
        }
        // Assembly for cache hits ends here; their compute stage is empty.
        let hit_assembly_us = clock::micros_since(drained_at);
        for (key, answer) in hits {
            reply_all(&mut waiters, &key, answer, hit_assembly_us, 0);
        }
        if missing.is_empty() {
            continue;
        }

        // Effective deadline per missing key: none if any waiter needs the
        // full answer, otherwise the latest waiter deadline.
        let deadlines: Vec<Option<Instant>> = missing
            .iter()
            .map(|key| {
                waiters
                    .get(key)
                    .and_then(|p| if p.unbounded { None } else { p.deadline })
            })
            .collect();

        // Assembly for computed keys ends where the kernel dispatch starts.
        let assembly_us = clock::micros_since(drained_at);

        // One multi-source dispatch over the unique missing keys.  Chunk
        // size 1: each source is one unit of work, claimed by exactly one
        // pool worker, computed with that worker's thread-local workspace.
        // Each unit is wrapped in `catch_unwind` so a panic (a bug, or the
        // `batcher.compute` failpoint) fails that key alone instead of
        // tearing down a pool worker or this dispatcher.  Each key's kernel
        // time is measured inside its own unit (timing rides next to the
        // answer and never into the cache).
        let exec = ctx.exec();
        let answers: Vec<(Reply, u64)> = par_chunk_map_exec(missing.len(), 1, &exec, |range| {
            let key = &missing[range.start];
            let deadline = deadlines[range.start];
            let compute_start = clock::now();
            let answer = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::fault::fire("batcher.compute")
                    .map_err(|e| SubmitError::Failed(e.to_string()))?;
                compute(&graph, policy, key, &ctx, deadline)
            }))
            .unwrap_or_else(|_| {
                counters.panics.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::WorkerPanic)
            });
            (answer, clock::micros_since(compute_start))
        });
        counters
            .computed
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        if metrics.compute_us.is_active() {
            for (_, compute_us) in &answers {
                metrics.compute_us.observe(*compute_us);
            }
        }

        // Same split as above: fill the cache under the lock, answer the
        // waiters after it is released.
        {
            let mut cache = lock_unpoisoned(&cache);
            for (key, (answer, _)) in missing.iter().zip(answers.iter()) {
                if let Ok(answer) = answer {
                    cache.insert(*key, Arc::clone(answer));
                }
            }
        }
        for (key, (answer, compute_us)) in missing.iter().zip(answers) {
            reply_all(&mut waiters, key, answer, assembly_us, compute_us);
        }
    }
}

fn reply_all(
    waiters: &mut HashMap<CacheKey, Pending>,
    key: &CacheKey,
    reply: Reply,
    assembly_us: u64,
    compute_us: u64,
) {
    if let Some(pending) = waiters.remove(key) {
        for (sender, queue_wait_us) in pending.replies {
            let traced = reply.clone().map(|answer| {
                (
                    answer,
                    JobTiming {
                        queue_wait_us,
                        assembly_us,
                        compute_us,
                    },
                )
            });
            // A waiter that gave up (connection died, deadline passed) is
            // not an error.
            let _ = sender.send(traced);
        }
    }
}

/// Computes one single-source answer.  Deterministic in the key alone:
/// exact mode runs the power iteration, push mode runs forward push whose
/// results are independent of workspace reuse by contract.  A deadline only
/// ever *aborts* the exact iteration (mapping to
/// [`SubmitError::DeadlineExceeded`]); it never changes a value that is
/// returned.  Push runs to completion — a single push is the cheap mode and
/// finishes well inside any sane deadline.
fn compute(
    graph: &Graph,
    policy: DanglingPolicy,
    key: &CacheKey,
    ctx: &EmbedContext,
    deadline: Option<Instant>,
) -> Reply {
    if key.exact {
        let key_ctx = match deadline {
            Some(d) => ctx.clone().with_deadline(d),
            None => ctx.clone(),
        };
        let dense = single_source_ppr_ctx(
            graph,
            key.source,
            key.alpha(),
            key.r_max(),
            policy,
            &key_ctx,
        )
        .map_err(|e| match e {
            NrpError::Cancelled => SubmitError::DeadlineExceeded,
            other => SubmitError::Failed(other.to_string()),
        })?;
        return Ok(Arc::new(PprAnswer {
            entries: Vec::new(),
            dense: Some(dense),
            residual_mass: 0.0,
            num_pushes: 0,
        }));
    }
    PUSH_WORKSPACE.with(|ws| {
        let mut ws = ws.borrow_mut();
        let outcome =
            forward_push_into(graph, key.source, key.alpha(), key.r_max(), policy, &mut ws)
                .map_err(|e| SubmitError::Failed(e.to_string()))?;
        Ok(Arc::new(PprAnswer {
            entries: ws.estimates().to_vec(),
            dense: None,
            residual_mass: outcome.residual_mass,
            num_pushes: outcome.num_pushes,
        }))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_core::push::forward_push_with_policy;
    use nrp_graph::generators::barabasi_albert;
    use nrp_graph::GraphKind;

    fn graph() -> Arc<Graph> {
        Arc::new(barabasi_albert(200, 3, GraphKind::Undirected, 11).unwrap())
    }

    fn batcher_with(cache: Arc<Mutex<PprCache>>, threads: usize) -> Batcher {
        Batcher::new(
            graph(),
            DanglingPolicy::SelfLoop,
            EmbedContext::new().with_threads(threads),
            cache,
            64,
            1024,
        )
    }

    #[test]
    fn batched_answers_match_direct_computation() {
        let graph = graph();
        let cache = Arc::new(Mutex::new(PprCache::new(16)));
        let batcher = Batcher::new(
            Arc::clone(&graph),
            DanglingPolicy::SelfLoop,
            EmbedContext::new().with_threads(4),
            Arc::clone(&cache),
            64,
            1024,
        );
        for source in [0u32, 5, 17] {
            let key = CacheKey::new(source, 0.15, 1e-4, false);
            let answer = batcher.submit(key).unwrap();
            let direct =
                forward_push_with_policy(&graph, source, 0.15, 1e-4, DanglingPolicy::SelfLoop)
                    .unwrap();
            assert_eq!(answer.entries, direct.estimates, "source {source}");
            assert_eq!(answer.residual_mass, direct.residual_mass);
            assert_eq!(answer.num_pushes, direct.num_pushes);
        }
        batcher.shutdown();
    }

    #[test]
    fn concurrent_identical_queries_coalesce() {
        let cache = Arc::new(Mutex::new(PprCache::new(0))); // no cache: force coalescing to do the sharing
        let batcher = Arc::new(batcher_with(cache, 2));
        let key = CacheKey::new(3, 0.15, 1e-4, false);
        let expected = batcher.submit(key).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || batcher.submit(key).unwrap())
            })
            .collect();
        for handle in handles {
            let answer = handle.join().unwrap();
            assert_eq!(answer.entries, expected.entries);
        }
        let snapshot = batcher.snapshot();
        assert_eq!(snapshot.jobs, 9);
        assert!(snapshot.batches >= 1);
        batcher.shutdown();
    }

    #[test]
    fn cache_hits_skip_computation() {
        let cache = Arc::new(Mutex::new(PprCache::new(8)));
        let batcher = batcher_with(Arc::clone(&cache), 1);
        let key = CacheKey::new(9, 0.15, 1e-4, false);
        let first = batcher.submit(key).unwrap();
        let second = batcher.submit(key).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second answer came from the cache"
        );
        assert_eq!(batcher.snapshot().computed, 1);
        assert_eq!(cache.lock().unwrap().snapshot().hits, 1);
        batcher.shutdown();
    }

    #[test]
    fn traced_submissions_attribute_latency_to_stages() {
        let cache = Arc::new(Mutex::new(PprCache::new(8)));
        let batcher = Batcher::new(
            graph(),
            DanglingPolicy::SelfLoop,
            EmbedContext::new().with_metrics(nrp_obs::MetricsHandle::enabled()),
            Arc::clone(&cache),
            64,
            1024,
        );
        let key = CacheKey::new(6, 0.15, 1e-4, false);
        let started = Instant::now();
        let (answer, timing) = batcher.submit_traced(key, None).unwrap();
        let total_us = started.elapsed().as_micros() as u64;
        assert!(!answer.entries.is_empty());
        assert!(timing.compute_us > 0, "a miss runs the kernel");
        assert!(
            timing.queue_wait_us + timing.assembly_us + timing.compute_us <= total_us,
            "stages are sub-intervals of the waiter's blocking time: {timing:?} vs {total_us}"
        );
        // The second submission is a cache hit: no kernel time.
        let (hit, hit_timing) = batcher.submit_traced(key, None).unwrap();
        assert!(Arc::ptr_eq(&answer, &hit), "hit shares the cached answer");
        assert_eq!(hit_timing.compute_us, 0);
        assert_eq!(batcher.snapshot().queue_depth, 0, "queue drained");
        batcher.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_cleanly() {
        let cache = Arc::new(Mutex::new(PprCache::new(8)));
        let batcher = batcher_with(cache, 1);
        batcher.shutdown();
        let err = batcher
            .submit(CacheKey::new(0, 0.15, 1e-4, false))
            .unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
    }

    #[test]
    fn exact_mode_returns_the_dense_vector() {
        let graph = graph();
        let cache = Arc::new(Mutex::new(PprCache::new(8)));
        let batcher = Batcher::new(
            Arc::clone(&graph),
            DanglingPolicy::SelfLoop,
            EmbedContext::new(),
            cache,
            64,
            1024,
        );
        let key = CacheKey::new(4, 0.2, 1e-9, true);
        let answer = batcher.submit(key).unwrap();
        let direct = nrp_core::ppr::single_source_ppr_with_policy(
            &graph,
            4,
            0.2,
            1e-9,
            DanglingPolicy::SelfLoop,
        )
        .unwrap();
        assert_eq!(answer.dense.as_deref(), Some(direct.as_slice()));
        batcher.shutdown();
    }

    #[test]
    fn an_already_expired_deadline_fails_without_computing() {
        let cache = Arc::new(Mutex::new(PprCache::new(8)));
        let batcher = batcher_with(cache, 1);
        let key = CacheKey::new(2, 0.15, 1e-4, false);
        let err = batcher
            .submit_with_deadline(key, Some(Instant::now()))
            .unwrap_err();
        assert_eq!(err, SubmitError::DeadlineExceeded);
        // A fresh submission with a generous deadline still works.
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        let answer = batcher.submit_with_deadline(key, Some(deadline)).unwrap();
        assert!(!answer.entries.is_empty());
        batcher.shutdown();
    }

    #[test]
    fn deadline_answers_are_bitwise_identical_to_unbounded_ones() {
        let cache = Arc::new(Mutex::new(PprCache::new(0))); // no cache: both calls compute
        let batcher = batcher_with(cache, 1);
        let key = CacheKey::new(7, 0.15, 1e-5, false);
        let unbounded = batcher.submit(key).unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        let bounded = batcher.submit_with_deadline(key, Some(deadline)).unwrap();
        assert_eq!(*unbounded, *bounded, "deadlines must never change values");
        batcher.shutdown();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_worker_panics_fail_one_key_and_spare_the_dispatcher() {
        let cache = Arc::new(Mutex::new(PprCache::new(8)));
        let batcher = batcher_with(cache, 1);
        crate::fault::configure("batcher.compute=panic:1.0:1", 42).unwrap();
        let key = CacheKey::new(5, 0.15, 1e-4, false);
        let err = batcher.submit(key).unwrap_err();
        assert_eq!(err, SubmitError::WorkerPanic);
        assert_eq!(batcher.snapshot().panics, 1);
        // The failpoint's trigger limit is spent; the dispatcher survived
        // and the same key now computes normally.
        let answer = batcher.submit(key).unwrap();
        assert!(!answer.entries.is_empty());
        crate::fault::clear();
        batcher.shutdown();
    }
}
