//! Request batching: concurrent PPR queries coalesce into one multi-source
//! dispatch on the shared worker pool.
//!
//! Connection threads never compute PPR themselves — they submit a
//! [`CacheKey`] to the batcher and block on a private reply channel.  A
//! single dispatcher thread drains everything queued at that moment into
//! one batch, deduplicates identical keys (two clients asking for the same
//! hot source share one computation), answers what it can from the cache,
//! and computes the remaining *unique* sources with a single
//! `par_chunk_map_exec` dispatch over the context's persistent
//! [`WorkerPool`](nrp_core::parallel::WorkerPool).  Each source's push runs
//! sequentially inside one worker (reusing that worker's thread-local
//! [`PushWorkspace`]), so every per-source result is bitwise identical to a
//! standalone computation — batching moves wall-clock, never values.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use nrp_core::parallel::par_chunk_map_exec;
use nrp_core::ppr::single_source_ppr_with_policy;
use nrp_core::push::{forward_push_into, PushWorkspace};
use nrp_core::{DanglingPolicy, EmbedContext};

use crate::sync::lock_unpoisoned;
use nrp_graph::Graph;

use crate::cache::{CacheKey, PprCache};

std::thread_local! {
    // One push workspace per worker thread (the pool's threads persist, so
    // each warms up once and then pushes allocation-free).
    static PUSH_WORKSPACE: RefCell<PushWorkspace> = RefCell::new(PushWorkspace::new());
}

/// One computed single-source PPR answer, shared between the cache and all
/// waiters via `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct PprAnswer {
    /// Push mode: `(node, estimate)` pairs ascending by node (empty in
    /// exact mode).
    pub entries: Vec<(u32, f64)>,
    /// Exact mode: the dense PPR vector (absent in push mode).
    pub dense: Option<Vec<f64>>,
    /// Residual probability mass left unconverted (0 in exact mode).
    pub residual_mass: f64,
    /// Push operations performed (0 in exact mode).
    pub num_pushes: usize,
}

/// Counter snapshot of the batcher, as served by `/stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSnapshot {
    /// Dispatcher wake-ups that processed at least one job.
    pub batches: u64,
    /// Jobs submitted in total.
    pub jobs: u64,
    /// Jobs that shared a computation with another job of the same batch
    /// (identical key submitted concurrently).
    pub coalesced: u64,
    /// Largest single batch seen.
    pub max_batch: u64,
    /// Unique keys actually computed (not answered by the cache).
    pub computed: u64,
}

#[derive(Default)]
struct BatchCounters {
    batches: AtomicU64,
    jobs: AtomicU64,
    coalesced: AtomicU64,
    max_batch: AtomicU64,
    computed: AtomicU64,
}

type Reply = Result<Arc<PprAnswer>, String>;

struct Job {
    key: CacheKey,
    reply: SyncSender<Reply>,
}

/// The batching dispatcher.  Owns one worker thread for its lifetime;
/// [`Batcher::shutdown`] drains every queued job before the thread exits,
/// so no submitted request is ever dropped unanswered.
pub struct Batcher {
    tx: Mutex<Option<Sender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    counters: Arc<BatchCounters>,
}

impl Batcher {
    /// Spawns the dispatcher.  `ctx` supplies the execution policy (thread
    /// budget plus persistent pool) every batch dispatches on; `max_batch`
    /// caps how many queued jobs one dispatch drains.
    pub fn new(
        graph: Arc<Graph>,
        policy: DanglingPolicy,
        ctx: EmbedContext,
        cache: Arc<Mutex<PprCache>>,
        max_batch: usize,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let counters = Arc::new(BatchCounters::default());
        let worker_counters = Arc::clone(&counters);
        let max_batch = max_batch.max(1);
        let worker = std::thread::Builder::new()
            .name("nrp-serve-batcher".into())
            .spawn(move || dispatch_loop(rx, graph, policy, ctx, cache, worker_counters, max_batch))
            // nrp-lint: allow(P001) — startup path, not the request path:
            // `Batcher::new` runs before the listener accepts its first
            // connection, and a process that cannot spawn its one
            // dispatcher thread has nothing to serve.
            .expect("spawning the batcher thread");
        Self {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            counters,
        }
    }

    /// Submits one PPR computation and blocks until its answer is ready
    /// (from the cache, a coalesced neighbour, or a fresh dispatch).
    pub fn submit(&self, key: CacheKey) -> Reply {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        // Clone the sender out of the mutex so the channel send happens
        // without holding `tx` — a send that blocked under the lock would
        // stall `shutdown()` (K003).  An in-flight clone keeps the channel
        // connected just long enough for this job to enqueue.
        let tx = lock_unpoisoned(&self.tx)
            .clone()
            .ok_or_else(|| "server is shutting down".to_string())?;
        tx.send(Job {
            key,
            reply: reply_tx,
        })
        .map_err(|_| "server is shutting down".to_string())?;
        self.counters.jobs.fetch_add(1, Ordering::Relaxed);
        reply_rx
            .recv()
            .unwrap_or_else(|_| Err("batch dispatcher exited".to_string()))
    }

    /// The current counters.
    pub fn snapshot(&self) -> BatchSnapshot {
        BatchSnapshot {
            batches: self.counters.batches.load(Ordering::Relaxed),
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            max_batch: self.counters.max_batch.load(Ordering::Relaxed),
            computed: self.counters.computed.load(Ordering::Relaxed),
        }
    }

    /// Stops the dispatcher: new submissions fail fast, every job already
    /// queued is still answered, then the thread exits and is joined.
    pub fn shutdown(&self) {
        let tx = lock_unpoisoned(&self.tx).take();
        drop(tx); // Disconnects the channel once queued jobs drain.
                  // Take the handle in one statement (the guard is a temporary) and
                  // join *after* the lock is released: joining under `worker` would
                  // block every concurrent shutdown for the full drain (K003).
        let worker = lock_unpoisoned(&self.worker).take();
        if let Some(worker) = worker {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(
    rx: Receiver<Job>,
    graph: Arc<Graph>,
    policy: DanglingPolicy,
    ctx: EmbedContext,
    cache: Arc<Mutex<PprCache>>,
    counters: Arc<BatchCounters>,
    max_batch: usize,
) {
    // `recv` returns queued jobs even after every sender is dropped, so the
    // shutdown path drains naturally: the loop ends only once the channel is
    // both disconnected and empty.
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);

        // Group identical keys: first-seen order keeps the dispatch
        // deterministic in batch composition (not that results depend on it).
        let mut unique: Vec<CacheKey> = Vec::new();
        let mut waiters: HashMap<CacheKey, Vec<SyncSender<Reply>>> = HashMap::new();
        for job in batch {
            let entry = waiters.entry(job.key).or_default();
            if entry.is_empty() {
                unique.push(job.key);
            } else {
                counters.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            entry.push(job.reply);
        }

        // Answer what the cache already holds.  Replies go out only after
        // the cache lock is back down: `reply_all` sends on (bounded)
        // channels, and a blocking send under the lock would stall every
        // request thread probing the cache (K003).
        let mut missing: Vec<CacheKey> = Vec::new();
        let mut hits: Vec<(CacheKey, Reply)> = Vec::new();
        {
            let mut cache = lock_unpoisoned(&cache);
            for key in unique {
                match cache.get(&key) {
                    Some(answer) => hits.push((key, Ok(answer))),
                    None => missing.push(key),
                }
            }
        }
        for (key, answer) in hits {
            reply_all(&mut waiters, &key, answer);
        }
        if missing.is_empty() {
            continue;
        }

        // One multi-source dispatch over the unique missing keys.  Chunk
        // size 1: each source is one unit of work, claimed by exactly one
        // pool worker, computed with that worker's thread-local workspace.
        let exec = ctx.exec();
        let answers: Vec<Reply> = par_chunk_map_exec(missing.len(), 1, &exec, |range| {
            compute(&graph, policy, &missing[range.start])
        });
        counters
            .computed
            .fetch_add(missing.len() as u64, Ordering::Relaxed);

        // Same split as above: fill the cache under the lock, answer the
        // waiters after it is released.
        {
            let mut cache = lock_unpoisoned(&cache);
            for (key, answer) in missing.iter().zip(answers.iter()) {
                if let Ok(answer) = answer {
                    cache.insert(*key, Arc::clone(answer));
                }
            }
        }
        for (key, answer) in missing.iter().zip(answers) {
            reply_all(&mut waiters, key, answer);
        }
    }
}

fn reply_all(
    waiters: &mut HashMap<CacheKey, Vec<SyncSender<Reply>>>,
    key: &CacheKey,
    reply: Reply,
) {
    if let Some(senders) = waiters.remove(key) {
        for sender in senders {
            // A waiter that gave up (connection died) is not an error.
            let _ = sender.send(reply.clone());
        }
    }
}

/// Computes one single-source answer.  Deterministic in the key alone:
/// exact mode runs the power iteration, push mode runs forward push whose
/// results are independent of workspace reuse by contract.
fn compute(graph: &Graph, policy: DanglingPolicy, key: &CacheKey) -> Reply {
    if key.exact {
        let dense =
            single_source_ppr_with_policy(graph, key.source, key.alpha(), key.r_max(), policy)
                .map_err(|e| e.to_string())?;
        return Ok(Arc::new(PprAnswer {
            entries: Vec::new(),
            dense: Some(dense),
            residual_mass: 0.0,
            num_pushes: 0,
        }));
    }
    PUSH_WORKSPACE.with(|ws| {
        let mut ws = ws.borrow_mut();
        let outcome =
            forward_push_into(graph, key.source, key.alpha(), key.r_max(), policy, &mut ws)
                .map_err(|e| e.to_string())?;
        Ok(Arc::new(PprAnswer {
            entries: ws.estimates().to_vec(),
            dense: None,
            residual_mass: outcome.residual_mass,
            num_pushes: outcome.num_pushes,
        }))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_core::push::forward_push_with_policy;
    use nrp_graph::generators::barabasi_albert;
    use nrp_graph::GraphKind;

    fn graph() -> Arc<Graph> {
        Arc::new(barabasi_albert(200, 3, GraphKind::Undirected, 11).unwrap())
    }

    #[test]
    fn batched_answers_match_direct_computation() {
        let graph = graph();
        let cache = Arc::new(Mutex::new(PprCache::new(16)));
        let batcher = Batcher::new(
            Arc::clone(&graph),
            DanglingPolicy::SelfLoop,
            EmbedContext::new().with_threads(4),
            Arc::clone(&cache),
            64,
        );
        for source in [0u32, 5, 17] {
            let key = CacheKey::new(source, 0.15, 1e-4, false);
            let answer = batcher.submit(key).unwrap();
            let direct =
                forward_push_with_policy(&graph, source, 0.15, 1e-4, DanglingPolicy::SelfLoop)
                    .unwrap();
            assert_eq!(answer.entries, direct.estimates, "source {source}");
            assert_eq!(answer.residual_mass, direct.residual_mass);
            assert_eq!(answer.num_pushes, direct.num_pushes);
        }
        batcher.shutdown();
    }

    #[test]
    fn concurrent_identical_queries_coalesce() {
        let graph = graph();
        let cache = Arc::new(Mutex::new(PprCache::new(0))); // no cache: force coalescing to do the sharing
        let batcher = Arc::new(Batcher::new(
            Arc::clone(&graph),
            DanglingPolicy::SelfLoop,
            EmbedContext::new().with_threads(2),
            cache,
            64,
        ));
        let key = CacheKey::new(3, 0.15, 1e-4, false);
        let expected = batcher.submit(key).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || batcher.submit(key).unwrap())
            })
            .collect();
        for handle in handles {
            let answer = handle.join().unwrap();
            assert_eq!(answer.entries, expected.entries);
        }
        let snapshot = batcher.snapshot();
        assert_eq!(snapshot.jobs, 9);
        assert!(snapshot.batches >= 1);
        batcher.shutdown();
    }

    #[test]
    fn cache_hits_skip_computation() {
        let graph = graph();
        let cache = Arc::new(Mutex::new(PprCache::new(8)));
        let batcher = Batcher::new(
            Arc::clone(&graph),
            DanglingPolicy::SelfLoop,
            EmbedContext::new(),
            Arc::clone(&cache),
            64,
        );
        let key = CacheKey::new(9, 0.15, 1e-4, false);
        let first = batcher.submit(key).unwrap();
        let second = batcher.submit(key).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second answer came from the cache"
        );
        assert_eq!(batcher.snapshot().computed, 1);
        assert_eq!(cache.lock().unwrap().snapshot().hits, 1);
        batcher.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_cleanly() {
        let graph = graph();
        let cache = Arc::new(Mutex::new(PprCache::new(8)));
        let batcher = Batcher::new(
            graph,
            DanglingPolicy::SelfLoop,
            EmbedContext::new(),
            cache,
            64,
        );
        batcher.shutdown();
        let err = batcher
            .submit(CacheKey::new(0, 0.15, 1e-4, false))
            .unwrap_err();
        assert!(err.contains("shutting down"), "{err}");
    }

    #[test]
    fn exact_mode_returns_the_dense_vector() {
        let graph = graph();
        let cache = Arc::new(Mutex::new(PprCache::new(8)));
        let batcher = Batcher::new(
            Arc::clone(&graph),
            DanglingPolicy::SelfLoop,
            EmbedContext::new(),
            cache,
            64,
        );
        let key = CacheKey::new(4, 0.2, 1e-9, true);
        let answer = batcher.submit(key).unwrap();
        let direct = nrp_core::ppr::single_source_ppr_with_policy(
            &graph,
            4,
            0.2,
            1e-9,
            DanglingPolicy::SelfLoop,
        )
        .unwrap();
        assert_eq!(answer.dense.as_deref(), Some(direct.as_slice()));
        batcher.shutdown();
    }
}
