//! Chaos tests: the server under deterministic, seeded fault injection
//! (`--features failpoints`).  Each test drives real TCP traffic while the
//! `fault` registry injects worker panics, socket resets, or compute
//! delays, and asserts the resilience contract: the accept loop never
//! dies, shed requests get well-formed 503s, a retrying client completes
//! its workload exactly once, and the same seed reproduces the same
//! injection schedule.
#![cfg(feature = "failpoints")]

use std::sync::Mutex;

use nrp_serve::{
    fault, fixture, CircuitBreaker, HttpClient, ResilientClient, RetryPolicy, ServeConfig,
    ServeState, Server,
};

const FIXTURE_NODES: usize = 120;
const FIXTURE_SEED: u64 = 11;

/// The failpoint registry is process-global, so tests that configure it
/// must not interleave.  The guard also clears the registry on drop —
/// panics included — so one failing test cannot poison the others.
static GATE: Mutex<()> = Mutex::new(());

struct FaultScope<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl FaultScope<'_> {
    fn install(spec: &str, seed: u64) -> Self {
        let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
        fault::configure(spec, seed).expect("valid failpoint spec");
        FaultScope { _guard: guard }
    }
}

impl Drop for FaultScope<'_> {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn start_server(config: ServeConfig) -> Server {
    let (graph, embedding) = fixture(FIXTURE_NODES, FIXTURE_SEED);
    Server::start(ServeState::new(graph, Some(embedding), config)).expect("server starts")
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        read_timeout_ms: 500,
        ..ServeConfig::default()
    }
}

fn resilient(server: &Server) -> ResilientClient {
    // Breaker threshold above any injected failure streak in these tests:
    // the breaker's own transitions are unit-tested; here it must only not
    // get in the way of the retry loop.
    ResilientClient::new(
        server.addr(),
        RetryPolicy::default(),
        CircuitBreaker::new(8, 100),
        0xC0FFEE,
    )
}

#[test]
fn worker_panics_spare_the_dispatcher_and_retries_complete_the_workload_once() {
    // The first three computes panic, deterministically.  The dispatcher
    // must catch each one (failing only that key), and the retrying client
    // must converge: 20 requests, 20 unique successes, exactly 3 retries.
    let _scope = FaultScope::install("batcher.compute=panic:1.0:3", 7);
    let server = start_server(test_config());
    let mut client = resilient(&server);

    for source in 0..20u32 {
        let response = client
            .get(&format!("/ppr?source={source}&top=4"))
            .expect("request converges");
        assert_eq!(response.status, 200, "source {source}");
    }
    let stats = client.stats();
    assert_eq!(stats.ok, 20, "every workload item completed exactly once");
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.retries, 3,
        "one retry per injected panic, none after the limit"
    );
    assert_eq!(fault::triggered("batcher.compute"), 3);

    // The dispatcher survived all three panics.
    let health = nrp_serve::get_json_once(server.addr(), "/healthz").expect("healthz");
    let stats_page = nrp_serve::get_json_once(server.addr(), "/stats").expect("stats");
    assert_eq!(
        health
            .as_object()
            .and_then(|o| o.get("status"))
            .and_then(|v| v.as_str()),
        Some("ok")
    );
    let panics = stats_page
        .as_object()
        .and_then(|o| o.get("batch"))
        .and_then(|v| v.as_object())
        .and_then(|o| o.get("panics"))
        .and_then(|v| v.as_u64());
    assert_eq!(panics, Some(3), "server counted the caught panics");
    server.shutdown();
}

#[test]
fn socket_faults_never_kill_the_accept_loop() {
    // Six injected connection faults (reads and writes), then clean air.
    // Every request must still converge through retries, and the accept
    // loop must be alive and serving afterwards.
    let _scope = FaultScope::install("conn.read=io-error:1.0:4;conn.write=io-error:1.0:2", 3);
    let server = start_server(test_config());
    let mut client = resilient(&server);

    for source in 0..10u32 {
        let response = client
            .get(&format!("/ppr?source={source}&top=4"))
            .expect("request converges despite socket faults");
        assert_eq!(response.status, 200, "source {source}");
    }
    assert_eq!(client.stats().ok, 10);
    assert_eq!(client.stats().failed, 0);
    assert_eq!(fault::triggered("conn.read"), 4);
    assert_eq!(fault::triggered("conn.write"), 2);

    // Fresh connection, no faults left: the accept loop is healthy.
    let mut fresh = HttpClient::new(server.addr());
    let (status, _) = fresh.get("/healthz").expect("accept loop alive");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn a_deadline_expiring_mid_compute_becomes_a_504() {
    // A 250ms injected compute delay against a 60ms request deadline: the
    // waiter must give up at its deadline with a 504 long before the
    // compute finishes, and the server must count the timeout.  The second
    // request (fault budget spent) proves the worker came back clean.
    let _scope = FaultScope::install("batcher.compute=delay(250):1.0:1", 5);
    let server = start_server(ServeConfig {
        cache_capacity: 0,
        ..test_config()
    });
    let mut client = HttpClient::new(server.addr());

    let response = client
        .get_full("/ppr?source=0&top=4", &[("x-deadline-ms", "60")])
        .expect("a response either way");
    assert_eq!(response.status, 504);
    let text = std::str::from_utf8(&response.body).expect("JSON body");
    assert!(text.contains("deadline"), "{text}");

    let stats = nrp_serve::get_json_once(server.addr(), "/stats").expect("stats");
    let timeouts = stats
        .as_object()
        .and_then(|o| o.get("resilience"))
        .and_then(|v| v.as_object())
        .and_then(|o| o.get("timeouts"))
        .and_then(|v| v.as_u64());
    assert_eq!(timeouts, Some(1), "the server counted the expired deadline");

    let (status, _) = client
        .get("/ppr?source=1&top=4")
        .expect("service resumes once the fault budget is spent");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn queue_saturation_sheds_with_well_formed_503s() {
    // One slot of queue and a 150ms delay on the first two computes: the
    // burst below must split into a few successes and fast, well-formed
    // 503 sheds — never hangs, never malformed responses.
    let _scope = FaultScope::install("batcher.compute=delay(150):1.0:2", 1);
    let server = start_server(ServeConfig {
        queue_capacity: 1,
        cache_capacity: 0,
        retry_after_secs: 2,
        ..test_config()
    });

    let outcomes: Vec<(u16, Option<u64>, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8u32)
            .map(|source| {
                let addr = server.addr();
                scope.spawn(move || {
                    let mut client = HttpClient::new(addr);
                    let response = client
                        .get_full(&format!("/ppr?source={source}&top=4"), &[])
                        .expect("a response, success or shed");
                    (response.status, response.retry_after, response.body)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst worker"))
            .collect()
    });

    let ok = outcomes.iter().filter(|(s, _, _)| *s == 200).count();
    let shed: Vec<_> = outcomes.iter().filter(|(s, _, _)| *s == 503).collect();
    assert!(ok >= 1, "someone got through: {outcomes:?}");
    assert!(
        !shed.is_empty(),
        "the 1-slot queue shed someone: {outcomes:?}"
    );
    assert_eq!(ok + shed.len(), outcomes.len(), "only 200s and 503s");
    for (_, retry_after, body) in &shed {
        assert_eq!(
            *retry_after,
            Some(2),
            "every shed carries the configured Retry-After"
        );
        let text = std::str::from_utf8(body).expect("JSON body");
        assert!(
            text.contains("\"error\""),
            "shed body is the documented error shape: {text}"
        );
    }

    let health = nrp_serve::get_json_once(server.addr(), "/healthz").expect("healthz after burst");
    assert_eq!(
        health
            .as_object()
            .and_then(|o| o.get("status"))
            .and_then(|v| v.as_str()),
        Some("ok")
    );
    server.shutdown();
}

#[test]
fn the_same_seed_reproduces_the_same_injection_schedule() {
    // Two identical runs, same seed, fresh server each: the per-request
    // status sequence and the trigger count must match bit for bit.  A
    // third run with a different seed must diverge (the schedule really is
    // seed-driven, not vacuously all-or-nothing).
    let run = |seed: u64| -> (Vec<u16>, u64) {
        let _scope = FaultScope::install("batcher.compute=io-error:0.5:64", seed);
        let server = start_server(ServeConfig {
            cache_capacity: 0,
            ..test_config()
        });
        let mut client = HttpClient::new(server.addr());
        let statuses: Vec<u16> = (0..24u32)
            .map(|source| {
                client
                    .get_full(&format!("/ppr?source={source}&top=4"), &[])
                    .expect("a response either way")
                    .status
            })
            .collect();
        let triggered = fault::triggered("batcher.compute");
        server.shutdown();
        (statuses, triggered)
    };

    let (first, first_triggered) = run(0xDEAD_BEEF);
    let (second, second_triggered) = run(0xDEAD_BEEF);
    assert_eq!(first, second, "same seed, same schedule");
    assert_eq!(first_triggered, second_triggered);
    assert!(first_triggered > 0, "the schedule injected something");
    assert!(first.contains(&200), "the schedule let something through");

    let (other, _) = run(0xFEED_FACE);
    assert_ne!(first, other, "a different seed reschedules");
}
