//! End-to-end tests over real TCP: HTTP parser abuse (the accept loop must
//! survive anything a confused or hostile client sends), the bitwise
//! determinism contract for `/ppr`, endpoint semantics, and graceful
//! shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use nrp_core::ppr::single_source_ppr_with_policy;
use nrp_core::push::forward_push_with_policy;
use nrp_serve::{fixture, HttpClient, ServeConfig, ServeState, Server};

const FIXTURE_NODES: usize = 120;
const FIXTURE_SEED: u64 = 11;

fn fixture_parts() -> &'static (nrp_graph::Graph, nrp_core::Embedding) {
    static FIXTURE: OnceLock<(nrp_graph::Graph, nrp_core::Embedding)> = OnceLock::new();
    FIXTURE.get_or_init(|| fixture(FIXTURE_NODES, FIXTURE_SEED))
}

fn start_server(config: ServeConfig) -> Server {
    let (graph, embedding) = fixture_parts().clone();
    Server::start(ServeState::new(graph, Some(embedding), config)).expect("server starts")
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        // Short idle timeout so tests that wait for server-side closes
        // finish quickly.
        read_timeout_ms: 500,
        ..ServeConfig::default()
    }
}

/// Writes `payload` raw, then reads until the server closes the connection.
fn raw_exchange(server: &Server, payload: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Writes and the half-close may race a server-side close (it stops
    // reading as soon as it decides to reject); losing that race is fine —
    // the response, if owed, is still readable below.
    let _ = stream.write_all(payload);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

fn status_of(response: &[u8]) -> &str {
    let text = std::str::from_utf8(response).expect("response is UTF-8");
    let mut parts = text.split_ascii_whitespace();
    assert_eq!(parts.next(), Some("HTTP/1.1"), "response: {text:?}");
    parts.next().expect("status code")
}

#[test]
fn malformed_input_never_kills_the_accept_loop() {
    let server = start_server(test_config());

    // 1. Garbage request line -> 400.
    let response = raw_exchange(&server, b"COMPLETE NONSENSE\r\n\r\n");
    assert_eq!(status_of(&response), "400");

    // 2. Unsupported method -> 405.
    let response = raw_exchange(&server, b"BREW /coffee HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&response), "405");

    // 3. Oversized header line -> 431.
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nx-padding: {}\r\n\r\n",
        "a".repeat(32 * 1024)
    );
    let response = raw_exchange(&server, huge.as_bytes());
    assert_eq!(status_of(&response), "431");

    // 4. Too many headers -> 431.
    let mut many = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..200 {
        many.push_str(&format!("x-h{i}: v\r\n"));
    }
    many.push_str("\r\n");
    let response = raw_exchange(&server, many.as_bytes());
    assert_eq!(status_of(&response), "431");

    // 5. Declared body larger than the cap -> 413.
    let response = raw_exchange(
        &server,
        b"POST /ppr HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
    );
    assert_eq!(status_of(&response), "413");

    // 6. Truncated body: the peer promises 50 bytes, sends 5 and closes.
    // No response is owed on a half-delivered message; the server must
    // just close without panicking.
    let _ = raw_exchange(
        &server,
        b"POST /ppr HTTP/1.1\r\ncontent-length: 50\r\n\r\nhello",
    );

    // 7. Connection dropped mid-request-line.
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"GET /heal").expect("write");
        drop(stream);
    }

    // 8. Pipelined requests: two messages in one write, two responses back.
    let double = b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n";
    let response = raw_exchange(&server, &double[..]);
    let text = std::str::from_utf8(&response).unwrap();
    assert_eq!(
        text.matches("HTTP/1.1 200").count(),
        2,
        "both pipelined requests answered: {text:?}"
    );

    // After all of the abuse the server still serves normal traffic.
    let health = nrp_serve::get_json_once(server.addr(), "/healthz").expect("healthz");
    assert_eq!(
        health
            .as_object()
            .and_then(|o| o.get("status"))
            .and_then(|v| v.as_str()),
        Some("ok")
    );
    server.shutdown();
}

#[test]
fn hostile_payloads_and_connection_churn_survive() {
    // Beyond protocol mistakes: actively hostile bytes.  None of these may
    // panic a worker (the panic-freedom contract, nrp-lint rules P001-P003)
    // and the server must answer real traffic afterwards.
    let server = start_server(test_config());

    // 1. Binary garbage flood — several KiB of non-UTF-8 noise.
    let garbage: Vec<u8> = (0..8192u32)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 7) as u8)
        .collect();
    let _ = raw_exchange(&server, &garbage);

    // 2. NUL bytes inside the request line and headers.
    let _ = raw_exchange(&server, b"GET /hea\x00lthz HTTP/1.1\r\nx\x00y: z\r\n\r\n");

    // 3. A header line with no colon.
    let response = raw_exchange(&server, b"GET /healthz HTTP/1.1\r\nnocolonhere\r\n\r\n");
    assert_eq!(status_of(&response), "400");

    // 4. Query-string abuse: duplicate, empty, overlong and numeric-edge
    // parameters must come back as 4xx JSON, never a panic.
    // Duplicate parameters are defined behavior (one of them wins), but the
    // answer must still be a well-formed HTTP response.
    let response = raw_exchange(
        &server,
        b"GET /ppr?source=0&source=1&source=2 HTTP/1.1\r\n\r\n",
    );
    assert!(!status_of(&response).is_empty());
    for target in [
        "/ppr?source=",
        "/ppr?source=18446744073709551616", // u64::MAX + 1
        "/ppr?source=-1",
        "/ppr?source=0&alpha=NaN",
        "/ppr?source=0&r_max=inf",
        "/knn?source=0&k=99999999999999999999",
    ] {
        let request = format!("GET {target} HTTP/1.1\r\n\r\n");
        let response = raw_exchange(&server, request.as_bytes());
        let status = status_of(&response);
        assert!(
            status.starts_with('4'),
            "{target} answered {status}, expected 4xx"
        );
    }

    // 5. Connection churn: open-and-slam sockets interleaved with real
    // requests, from several threads at once.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..25 {
                    if let Ok(stream) = TcpStream::connect(server.addr()) {
                        drop(stream);
                    }
                }
            });
        }
        scope.spawn(|| {
            let mut client = HttpClient::new(server.addr());
            for _ in 0..10 {
                client.get_json("/healthz").expect("healthz during churn");
            }
        });
    });

    // The server is still healthy and still computes correct answers.
    let answer = nrp_serve::get_json_once(server.addr(), "/ppr?source=1&top=4").expect("ppr");
    assert!(answer.as_object().and_then(|o| o.get("entries")).is_some());
    server.shutdown();
}

/// The acceptance criterion: a cached `/ppr` answer is bitwise identical to
/// an uncached direct `single_source_ppr` call, through the JSON wire.
#[test]
fn exact_ppr_is_bitwise_identical_to_direct_call_cached_or_not() {
    let server = start_server(test_config());
    let (graph, _) = fixture_parts();
    let config = server.state().config().clone();
    let mut client = HttpClient::new(server.addr());

    for source in [0u32, 7, 63] {
        let fetch = |client: &mut HttpClient| -> Vec<f64> {
            let answer = client
                .get_json(&format!("/ppr?source={source}&mode=exact"))
                .expect("/ppr exact");
            let vector = answer
                .as_object()
                .and_then(|o| o.get("vector"))
                .and_then(|v| v.as_array())
                .expect("exact answers carry the dense vector");
            vector
                .iter()
                .map(|v| v.as_f64().expect("vector entries are numbers"))
                .collect()
        };
        // First call computes and fills the cache; the second must hit it.
        let uncached = fetch(&mut client);
        let cached = fetch(&mut client);
        let direct = single_source_ppr_with_policy(
            graph,
            source,
            config.alpha,
            config.r_max,
            config.dangling,
        )
        .expect("direct PPR");
        assert_eq!(direct.len(), uncached.len());
        for v in 0..direct.len() {
            assert_eq!(
                direct[v].to_bits(),
                uncached[v].to_bits(),
                "uncached bitwise mismatch at source {source}, node {v}"
            );
            assert_eq!(
                direct[v].to_bits(),
                cached[v].to_bits(),
                "cached bitwise mismatch at source {source}, node {v}"
            );
        }
    }
    let stats = client.get_json("/stats").expect("/stats");
    let hits = stats
        .as_object()
        .and_then(|o| o.get("cache"))
        .and_then(|v| v.as_object())
        .and_then(|o| o.get("hits"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(hits >= 3, "second fetches were cache hits (hits = {hits})");
    server.shutdown();
}

#[test]
fn push_ppr_matches_forward_push_exactly() {
    let server = start_server(test_config());
    let (graph, _) = fixture_parts();
    let config = server.state().config().clone();
    let mut client = HttpClient::new(server.addr());

    let source = 5u32;
    let answer = client
        .get_json(&format!("/ppr?source={source}"))
        .expect("/ppr push");
    let object = answer.as_object().unwrap();
    let entries: Vec<(u32, f64)> = object
        .get("entries")
        .and_then(|v| v.as_array())
        .expect("push answers carry entries")
        .iter()
        .map(|pair| {
            let pair = pair.as_array().expect("entry is a [node, value] pair");
            (
                pair[0].as_u64().expect("node id") as u32,
                pair[1].as_f64().expect("estimate"),
            )
        })
        .collect();
    let direct =
        forward_push_with_policy(graph, source, config.alpha, config.r_max, config.dangling)
            .expect("direct push");
    assert_eq!(entries.len(), direct.estimates.len());
    for (served, expected) in entries.iter().zip(direct.estimates.iter()) {
        assert_eq!(served.0, expected.0);
        assert_eq!(served.1.to_bits(), expected.1.to_bits());
    }
    assert_eq!(
        object.get("num_pushes").and_then(|v| v.as_u64()),
        Some(direct.num_pushes as u64)
    );
    let served_residual = object
        .get("residual_mass")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert_eq!(served_residual.to_bits(), direct.residual_mass.to_bits());
    server.shutdown();
}

#[test]
fn knn_and_recommend_follow_the_embedding() {
    let server = start_server(test_config());
    let (graph, embedding) = fixture_parts();
    let mut client = HttpClient::new(server.addr());

    let source = 3u32;
    let knn = client
        .get_json(&format!("/knn?source={source}&k=5"))
        .expect("/knn");
    let neighbors: Vec<(u32, f64)> = knn
        .as_object()
        .and_then(|o| o.get("neighbors"))
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .map(|pair| {
            let pair = pair.as_array().unwrap();
            (pair[0].as_u64().unwrap() as u32, pair[1].as_f64().unwrap())
        })
        .collect();
    assert_eq!(neighbors.len(), 5);
    assert!(
        neighbors.windows(2).all(|w| w[0].1 >= w[1].1),
        "scores descend: {neighbors:?}"
    );
    for &(v, score) in &neighbors {
        assert_ne!(v, source);
        assert_eq!(score.to_bits(), embedding.score(source, v).to_bits());
    }

    let rec = client
        .get_json(&format!("/recommend?source={source}&k=5"))
        .expect("/recommend");
    let recommended: Vec<u32> = rec
        .as_object()
        .and_then(|o| o.get("recommendations"))
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .map(|pair| pair.as_array().unwrap()[0].as_u64().unwrap() as u32)
        .collect();
    for &v in &recommended {
        assert!(
            !graph.has_arc(source, v),
            "recommendation {v} is already linked"
        );
    }

    // Parameter validation surfaces as 4xx JSON errors, not panics.
    for bad in [
        "/ppr",
        "/ppr?source=abc",
        "/ppr?source=999999",
        "/ppr?source=0&alpha=2.0",
        "/ppr?source=0&mode=sideways",
        "/knn?source=0&k=0",
        "/nope",
    ] {
        let err = client.get_json(bad).expect_err("bad request is rejected");
        assert!(err.contains("status 4"), "{bad}: {err}");
    }
    server.shutdown();
}

#[test]
fn server_without_embedding_rejects_knn_but_serves_ppr() {
    let (graph, _) = fixture_parts().clone();
    let server = Server::start(ServeState::new(graph, None, test_config())).expect("server starts");
    let mut client = HttpClient::new(server.addr());
    let err = client.get_json("/knn?source=0").expect_err("no embedding");
    assert!(err.contains("status 409"), "{err}");
    client.get_json("/ppr?source=0&top=4").expect("ppr works");
    server.shutdown();
}

#[test]
fn a_stale_keep_alive_connection_reconnects_transparently() {
    // The server idle-closes keep-alive connections after read_timeout_ms.
    // A client holding such a stale stream must transparently redial on the
    // next request instead of surfacing the dead socket to the caller.
    let server = start_server(ServeConfig {
        read_timeout_ms: 100,
        ..test_config()
    });
    let mut client = HttpClient::new(server.addr());
    let (status, _) = client.get("/healthz").expect("first request");
    assert_eq!(status, 200);

    // Wait well past the idle timeout so the server closes the connection.
    std::thread::sleep(std::time::Duration::from_millis(400));

    let (status, _) = client
        .get("/healthz")
        .expect("stale connection reconnects transparently");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn the_client_survives_a_server_restart_on_the_same_address() {
    // Satellite regression for the keep-alive staleness fix: a client
    // session spans a full server restart on the same address.  The client
    // returns its connection before the restart (a client-initiated close
    // leaves no server-side TIME_WAIT socket holding the port hostage).
    let server = start_server(test_config());
    let addr = server.addr();
    let mut client = HttpClient::new(addr);
    let (status, _) = client.get("/healthz").expect("request to first server");
    assert_eq!(status, 200);

    client.disconnect();
    // Give the first server a beat to reap the closed connection, then
    // take it down completely.
    std::thread::sleep(std::time::Duration::from_millis(50));
    server.shutdown();

    // Restart on the exact same address.  The bind can transiently lose a
    // race with socket teardown, so retry briefly rather than flake.
    let config = ServeConfig {
        addr: addr.to_string(),
        ..test_config()
    };
    let mut restarted = None;
    for _ in 0..40 {
        let (graph, embedding) = fixture_parts().clone();
        match Server::start(ServeState::new(graph, Some(embedding), config.clone())) {
            Ok(server) => {
                restarted = Some(server);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
    let restarted = restarted.expect("rebind the same address after restart");
    assert_eq!(restarted.addr(), addr, "same address across the restart");

    // The same client object keeps working against the new process
    // generation — and real answers flow, not just health checks.
    let (status, _) = client.get("/healthz").expect("request after restart");
    assert_eq!(status, 200);
    client
        .get_json("/ppr?source=0&top=4")
        .expect("ppr after restart");
    restarted.shutdown();
}

#[test]
fn deadline_headers_validate_and_permissive_deadlines_pass() {
    let server = start_server(test_config());
    let mut client = HttpClient::new(server.addr());

    // Malformed header -> 400 naming the header.
    let response = client
        .get_full("/ppr?source=0&top=4", &[("x-deadline-ms", "soonish")])
        .expect("response");
    assert_eq!(response.status, 400);
    let text = std::str::from_utf8(&response.body).unwrap();
    assert!(text.contains("x-deadline-ms"), "{text}");

    // 0 means "no deadline", and a generous deadline is plainly met.
    for value in ["0", "10000"] {
        let response = client
            .get_full("/ppr?source=0&top=4", &[("x-deadline-ms", value)])
            .expect("response");
        assert_eq!(response.status, 200, "x-deadline-ms: {value}");
    }
    server.shutdown();
}

#[test]
fn excess_connections_are_rejected_with_503_and_retry_after() {
    let server = start_server(ServeConfig {
        max_connections: 1,
        retry_after_secs: 3,
        ..test_config()
    });

    // Occupy the single connection slot with a live keep-alive client.
    let mut first = HttpClient::new(server.addr());
    let (status, _) = first.get("/healthz").expect("first connection");
    assert_eq!(status, 200);

    // The second connection must be turned away at the door: a well-formed
    // 503 with the configured Retry-After, then close.
    let mut second = HttpClient::new(server.addr());
    let response = second
        .get_full("/healthz", &[])
        .expect("rejection is a well-formed response");
    assert_eq!(response.status, 503);
    assert_eq!(response.retry_after, Some(3));
    let text = std::str::from_utf8(&response.body).unwrap();
    assert!(text.contains("too many connections"), "{text}");

    // The occupant still works and the rejection was counted.
    let stats = first.get_json("/stats").expect("/stats");
    let resilience = stats
        .as_object()
        .and_then(|o| o.get("resilience"))
        .and_then(|v| v.as_object())
        .expect("resilience block");
    assert!(
        resilience
            .get("conn_rejected")
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
            >= 1
    );
    assert_eq!(
        resilience.get("max_connections").and_then(|v| v.as_u64()),
        Some(1)
    );
    server.shutdown();
}

#[test]
fn degraded_exact_answers_are_bitwise_identical_to_direct_push() {
    // The acceptance criterion for graceful degradation: a downgraded
    // `mode=exact` request takes the ordinary push path end to end, so its
    // answer is bitwise identical to a direct `forward_push_with_policy`
    // call — the response is honest about it via `"degraded": true`.
    let server = start_server(test_config());
    let (graph, _) = fixture_parts();
    let config = server.state().config().clone();
    let mut client = HttpClient::new(server.addr());
    let source = 9u32;

    server
        .state()
        .force_degrade(nrp_serve::DegradeLevel::Degraded);
    let answer = client
        .get_json(&format!("/ppr?source={source}&mode=exact"))
        .expect("degraded exact request");
    let object = answer.as_object().unwrap();
    assert_eq!(
        object.get("degraded").and_then(|v| v.as_bool()),
        Some(true),
        "the answer declares the downgrade"
    );
    assert_eq!(
        object.get("mode").and_then(|v| v.as_str()),
        Some("push"),
        "exact was downgraded to push"
    );
    let direct =
        forward_push_with_policy(graph, source, config.alpha, config.r_max, config.dangling)
            .expect("direct push");
    let entries = object
        .get("entries")
        .and_then(|v| v.as_array())
        .expect("push answers carry entries");
    assert_eq!(entries.len(), direct.estimates.len());
    for (served, expected) in entries.iter().zip(direct.estimates.iter()) {
        let pair = served.as_array().unwrap();
        assert_eq!(pair[0].as_u64().unwrap() as u32, expected.0);
        assert_eq!(
            pair[1].as_f64().unwrap().to_bits(),
            expected.1.to_bits(),
            "degraded answer is bitwise identical to the direct push"
        );
    }

    // The degraded state is visible on /healthz and /stats …
    let health = client.get_json("/healthz").expect("/healthz");
    assert_eq!(
        health
            .as_object()
            .and_then(|o| o.get("state"))
            .and_then(|v| v.as_str()),
        Some("degraded")
    );
    let stats = client.get_json("/stats").expect("/stats");
    let resilience = stats
        .as_object()
        .and_then(|o| o.get("resilience"))
        .and_then(|v| v.as_object())
        .expect("resilience block");
    assert_eq!(
        resilience.get("state").and_then(|v| v.as_str()),
        Some("degraded")
    );
    assert_eq!(
        resilience.get("degraded").and_then(|v| v.as_u64()),
        Some(1),
        "one downgraded request counted"
    );
    for counter in ["shed", "timeouts", "retry_after", "conn_rejected"] {
        assert!(
            resilience.get(counter).and_then(|v| v.as_u64()).is_some(),
            "resilience exposes `{counter}`"
        );
    }
    assert!(
        stats
            .as_object()
            .and_then(|o| o.get("uptime_secs"))
            .and_then(|v| v.as_f64())
            .is_some(),
        "stats exposes uptime"
    );

    // … and at the cache-only rung, warm keys still serve (bitwise, from
    // the push answer cached above) while cold keys shed with Retry-After.
    server
        .state()
        .force_degrade(nrp_serve::DegradeLevel::CacheOnly);
    let warm = client
        .get_json(&format!("/ppr?source={source}&mode=exact"))
        .expect("warm key serves from cache");
    let warm_entries = warm
        .as_object()
        .and_then(|o| o.get("entries"))
        .and_then(|v| v.as_array())
        .unwrap();
    for (served, expected) in warm_entries.iter().zip(direct.estimates.iter()) {
        let pair = served.as_array().unwrap();
        assert_eq!(pair[1].as_f64().unwrap().to_bits(), expected.1.to_bits());
    }
    let cold = client
        .get_full("/ppr?source=42&mode=exact", &[])
        .expect("cold key answers");
    assert_eq!(cold.status, 503, "cache-only sheds uncached keys");
    assert!(cold.retry_after.is_some());

    // Back to normal: exact service resumes with the dense vector.
    server
        .state()
        .force_degrade(nrp_serve::DegradeLevel::Normal);
    let normal = client
        .get_json(&format!("/ppr?source={source}&mode=exact"))
        .expect("normal exact request");
    let object = normal.as_object().unwrap();
    assert_eq!(object.get("mode").and_then(|v| v.as_str()), Some("exact"));
    assert!(object.get("degraded").is_none());
    assert!(object.get("vector").is_some());
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let server = start_server(test_config());
    let addr = server.addr();
    let mut client = HttpClient::new(addr);
    client.get_json("/healthz").expect("pre-shutdown request");
    server.shutdown();
    // After shutdown() returns every thread has been joined; a fresh
    // request must fail (refused, reset, or EOF — anything but an answer).
    assert!(HttpClient::new(addr).get_json("/healthz").is_err());
}

// ---- Telemetry end-to-end ---------------------------------------------

#[test]
fn traced_ppr_reports_stage_breakdown() {
    let server = start_server(test_config());
    let mut client = HttpClient::new(server.addr());

    // Untraced requests carry no trace block.
    let plain = client.get_json("/ppr?source=3&top=8").expect("plain /ppr");
    assert!(plain.as_object().unwrap().get("trace").is_none());

    // `x-trace: 1` adds the per-stage breakdown.
    let traced = client
        .get_full("/ppr?source=4&top=8", &[("x-trace", "1")])
        .expect("traced /ppr");
    assert_eq!(traced.status, 200);
    let body: serde::Value =
        serde_json::from_str(std::str::from_utf8(&traced.body).unwrap()).expect("JSON body");
    let object = body.as_object().unwrap();
    let trace = object
        .get("trace")
        .and_then(|v| v.as_object())
        .expect("traced response has a trace block");
    assert!(trace.get("trace_id").and_then(|v| v.as_u64()).unwrap() >= 1);
    let total_us = trace.get("total_us").and_then(|v| v.as_u64()).unwrap();
    let stage_sum_us = trace.get("stage_sum_us").and_then(|v| v.as_u64()).unwrap();
    let stages = trace
        .get("stages_us")
        .and_then(|v| v.as_object())
        .expect("stages_us object");
    for stage in [
        "parse",
        "admission",
        "queue_wait",
        "batch_assembly",
        "kernel_compute",
        "serialize",
    ] {
        assert!(
            stages.get(stage).and_then(|v| v.as_u64()).is_some(),
            "stage {stage} missing from {stages:?}"
        );
    }
    // The stages are disjoint sub-intervals of the handler, so their sum
    // cannot exceed the handler-measured total.
    assert!(
        stage_sum_us <= total_us,
        "stage sum {stage_sum_us}µs > total {total_us}µs"
    );

    // Tracing is observational only: the traced answer for a key is
    // bitwise identical to the untraced one.
    let again = client.get_json("/ppr?source=4&top=8").expect("same key");
    let entries = |v: &serde::Value| {
        serde_json::to_string(v.as_object().unwrap().get("entries").unwrap()).unwrap()
    };
    assert_eq!(entries(&body), entries(&again));
    server.shutdown();
}

#[test]
fn metrics_endpoint_exposes_core_families() {
    let server = start_server(test_config());
    let mut client = HttpClient::new(server.addr());
    // Force real work so the pool, batcher and cache all have samples.
    for source in 0..4 {
        client
            .get_json(&format!("/ppr?source={source}&top=8"))
            .expect("/ppr");
    }
    client.get_json("/knn?source=0&k=3").expect("/knn");

    let text = nrp_serve::get_text_once(server.addr(), "/metrics").expect("/metrics");
    for family in [
        "# TYPE nrp_serve_request_latency_us histogram",
        "# TYPE nrp_serve_requests_total counter",
        "# TYPE nrp_batch_queue_wait_us histogram",
        "# TYPE nrp_batch_compute_us histogram",
        "# TYPE nrp_pool_dispatches_total counter",
        "# TYPE nrp_cache_misses_total counter",
        "# TYPE nrp_degrade_state gauge",
        "nrp_serve_request_latency_us_count{endpoint=\"/ppr\"}",
        "nrp_serve_requests_total{endpoint=\"/ppr\"} 4",
    ] {
        assert!(text.contains(family), "missing `{family}` in:\n{text}");
    }
    server.shutdown();
}

#[test]
fn debug_traces_returns_recent_jsonl() {
    let server = start_server(test_config());
    let mut client = HttpClient::new(server.addr());
    for source in 0..3 {
        client
            .get_json(&format!("/ppr?source={source}&top=4"))
            .expect("/ppr");
    }
    let text = nrp_serve::get_text_once(server.addr(), "/debug/traces").expect("/debug/traces");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 3, "one trace per /ppr request:\n{text}");
    for line in lines {
        let event: serde::Value = serde_json::from_str(line).expect("JSONL line parses");
        let object = event.as_object().unwrap();
        assert_eq!(
            object.get("endpoint").and_then(|v| v.as_str()),
            Some("/ppr")
        );
        assert_eq!(object.get("status").and_then(|v| v.as_u64()), Some(200));
        assert!(object.get("trace_id").and_then(|v| v.as_u64()).unwrap() >= 1);
        assert!(object.get("stages_us").is_some());
    }
    server.shutdown();
}

#[test]
fn stats_reports_queue_depth_latency_and_endpoint_split() {
    let server = start_server(test_config());
    let mut client = HttpClient::new(server.addr());
    for source in 0..3 {
        client
            .get_json(&format!("/ppr?source={source}&top=4"))
            .expect("/ppr");
    }
    let stats = client.get_json("/stats").expect("/stats");
    let object = stats.as_object().unwrap();

    let section = |name: &str| {
        object
            .get(name)
            .and_then(|v| v.as_object())
            .unwrap_or_else(|| panic!("/stats has a {name} object"))
    };
    assert_eq!(
        section("batch").get("queue_depth").and_then(|v| v.as_u64()),
        Some(0),
        "queue drains between requests"
    );
    let ppr_latency = section("latency")
        .get("/ppr")
        .and_then(|v| v.as_object())
        .expect("latency has a /ppr entry");
    assert!(ppr_latency.get("count").and_then(|v| v.as_u64()).unwrap() >= 3);
    let p50 = ppr_latency.get("p50_us").and_then(|v| v.as_u64()).unwrap();
    let p99 = ppr_latency.get("p99_us").and_then(|v| v.as_u64()).unwrap();
    assert!(p50 > 0 && p50 <= p99, "p50 {p50}µs, p99 {p99}µs");
    let by_endpoint = section("resilience")
        .get("by_endpoint")
        .and_then(|v| v.as_object())
        .expect("resilience has by_endpoint");
    let ppr_split = by_endpoint
        .get("/ppr")
        .and_then(|v| v.as_object())
        .expect("by_endpoint has /ppr");
    assert_eq!(ppr_split.get("shed").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(ppr_split.get("timeouts").and_then(|v| v.as_u64()), Some(0));
    let telemetry = section("telemetry");
    assert_eq!(
        telemetry.get("metrics_enabled").and_then(|v| v.as_bool()),
        Some(true)
    );
    assert!(
        telemetry
            .get("traces_retained")
            .and_then(|v| v.as_u64())
            .unwrap()
            >= 3
    );
    server.shutdown();
}

#[test]
fn disabling_metrics_keeps_every_endpoint_serving() {
    let server = start_server(ServeConfig {
        metrics_enabled: false,
        trace_capacity: 0,
        ..test_config()
    });
    let mut client = HttpClient::new(server.addr());
    client.get_json("/ppr?source=0&top=4").expect("/ppr");
    // The scrape still answers (derived families only), traces are off.
    let text = nrp_serve::get_text_once(server.addr(), "/metrics").expect("/metrics");
    assert!(text.contains("nrp_serve_requests_total"));
    assert!(!text.contains("nrp_serve_request_latency_us"));
    let traces = nrp_serve::get_text_once(server.addr(), "/debug/traces").expect("/debug/traces");
    assert!(traces.is_empty(), "trace_capacity 0 retains nothing");
    let stats = client.get_json("/stats").expect("/stats");
    let telemetry = stats
        .as_object()
        .and_then(|o| o.get("telemetry"))
        .and_then(|v| v.as_object())
        .unwrap();
    assert_eq!(
        telemetry.get("metrics_enabled").and_then(|v| v.as_bool()),
        Some(false)
    );
    server.shutdown();
}
