//! The workspace's designated wall-clock owner.
//!
//! Every non-test read of [`std::time::Instant`] / [`std::time::SystemTime`]
//! in the workspace goes through this module (lint rule `O001` enforces it;
//! `D002` covers the kernel crates).  Centralizing the clock keeps the
//! determinism contract auditable: a wall-clock value obtained here may feed
//! *timeouts, deadlines and telemetry* — never a computed result — and there
//! is exactly one place to check that this stays true.
//!
//! [`StageClock`] (migrated from `nrp-core`) records named stage boundaries
//! during an embedding run; `nrp_core::context` re-exports it so existing
//! `nrp_core::context::StageClock` paths keep working.

use std::time::{Duration, Instant};

/// Reads the wall clock.
///
/// This is deliberately the only sanctioned `Instant::now()` call site in
/// non-test workspace code (outside this crate, lint rule `O001` flags raw
/// reads).  The returned [`Instant`] is an ordinary std instant — callers
/// keep doing arithmetic (`+ Duration`, `duration_since`, `elapsed`) on it
/// directly.
pub fn now() -> Instant {
    Instant::now()
}

/// Microseconds elapsed since `earlier`, saturating at zero if the clock is
/// non-monotonic across threads, and at `u64::MAX` on overflow.
pub fn micros_since(earlier: Instant) -> u64 {
    duration_as_micros(now().saturating_duration_since(earlier))
}

/// Converts a [`Duration`] to whole microseconds, saturating at `u64::MAX`.
pub fn duration_as_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Wall-clock duration of one named pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (e.g. `"approx_ppr"`, `"reweight"`).
    pub name: &'static str,
    /// Elapsed wall-clock time of the stage.
    pub duration: Duration,
    /// Number of worker threads the stage ran with (1 for sequential
    /// stages).  Thanks to the workspace-wide determinism contract this is
    /// purely a performance record: the stage's output never depends on it.
    pub threads: usize,
}

/// Records stage boundaries during an embedding run.
///
/// ```
/// use nrp_obs::clock::StageClock;
/// let mut clock = StageClock::start();
/// // ... stage one work ...
/// clock.lap("stage_one");
/// // ... stage two work ...
/// clock.lap("stage_two");
/// ```
#[derive(Debug)]
pub struct StageClock {
    started: Instant,
    last: Instant,
    stages: Vec<StageTiming>,
}

impl StageClock {
    /// Starts the clock.
    pub fn start() -> Self {
        let now = now();
        Self {
            started: now,
            last: now,
            stages: Vec::new(),
        }
    }

    /// Closes the current stage under `name` and starts the next one
    /// (recorded as sequential; see [`StageClock::lap_parallel`]).
    pub fn lap(&mut self, name: &'static str) {
        self.lap_parallel(name, 1);
    }

    /// Closes the current stage under `name`, recording that it ran with
    /// `threads` worker threads, and starts the next one.
    pub fn lap_parallel(&mut self, name: &'static str, threads: usize) {
        let now = now();
        self.stages.push(StageTiming {
            name,
            duration: now.duration_since(self.last),
            threads: threads.max(1),
        });
        self.last = now;
    }

    /// Total elapsed time since the clock started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The recorded stages so far.
    pub fn stages(&self) -> &[StageTiming] {
        &self.stages
    }

    /// Consumes the clock, returning the recorded stages (used when a run's
    /// metadata takes ownership of the timings).
    pub fn into_stages(self) -> Vec<StageTiming> {
        self.stages
    }
}

impl Default for StageClock {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_clock_records_laps_in_order() {
        let mut clock = StageClock::start();
        clock.lap("a");
        clock.lap_parallel("b", 4);
        clock.lap_parallel("c", 0);
        assert_eq!(clock.stages().len(), 3);
        assert_eq!(clock.stages()[0].name, "a");
        assert_eq!(clock.stages()[0].threads, 1);
        assert_eq!(clock.stages()[1].name, "b");
        assert_eq!(clock.stages()[1].threads, 4);
        assert_eq!(clock.stages()[2].threads, 1, "thread counts clamp to >= 1");
        assert!(clock.elapsed() >= clock.stages()[0].duration);
        let stages = clock.into_stages();
        assert_eq!(stages.len(), 3);
    }

    #[test]
    fn micros_conversions_saturate() {
        assert_eq!(duration_as_micros(Duration::from_micros(250)), 250);
        assert_eq!(duration_as_micros(Duration::MAX), u64::MAX);
        let earlier = now();
        assert!(micros_since(earlier) < 60_000_000, "sane elapsed reading");
    }
}
