//! Structured spans and per-request latency attribution.
//!
//! A [`TraceContext`] collects named stage durations for one request; a
//! [`Span`] measures one stage.  Trace **identity is deterministic**: IDs
//! come from a plain per-process counter ([`TraceIds`]), never from the wall
//! clock or an RNG, so two runs that admit requests in the same order assign
//! the same IDs (the D-rule contract extends to telemetry identity — only
//! *durations* may vary between runs).
//!
//! Completed traces become [`TraceEvent`]s: plain data with a canonical
//! one-line JSON rendering, retained in a bounded ring ([`TraceLog`]) that a
//! server dumps as JSONL (`GET /debug/traces`).  The ring is a fixed-capacity
//! `VecDeque` behind a mutex — the push path is O(1), allocation-free after
//! the event itself, and the oldest event is dropped on overflow.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::clock;

/// Hands out deterministic trace IDs: a monotonically increasing counter
/// starting at 1 (so 0 can mean "untraced" in logs).
#[derive(Debug, Default)]
pub struct TraceIds(AtomicU64);

impl TraceIds {
    /// A generator starting at 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next trace ID.
    pub fn next_id(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// A single timed stage.  Start it with [`Span::start`], then either read
/// [`Span::elapsed_micros`] or close it into a [`TraceContext`] with
/// [`Span::finish`].
#[derive(Debug)]
pub struct Span {
    stage: &'static str,
    started: Instant,
}

impl Span {
    /// Starts timing `stage`.
    pub fn start(stage: &'static str) -> Self {
        Self {
            stage,
            started: clock::now(),
        }
    }

    /// Microseconds elapsed since the span started.
    pub fn elapsed_micros(&self) -> u64 {
        clock::micros_since(self.started)
    }

    /// Records the span's elapsed time into `trace` under its stage name.
    pub fn finish(self, trace: &mut TraceContext) {
        let micros = self.elapsed_micros();
        trace.record(self.stage, micros);
    }
}

/// Per-request latency attribution: an ID plus named stage durations in
/// recording order.
#[derive(Debug)]
pub struct TraceContext {
    id: u64,
    started: Instant,
    stages: Vec<(&'static str, u64)>,
}

impl TraceContext {
    /// A trace with the given (caller-assigned, deterministic) ID.
    pub fn new(id: u64) -> Self {
        Self {
            id,
            started: clock::now(),
            stages: Vec::new(),
        }
    }

    /// The trace ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records `micros` against `stage`.  Recording the same stage twice
    /// accumulates (a request can wait in the queue, for instance, only
    /// once today — but accumulation is the non-surprising merge).
    pub fn record(&mut self, stage: &'static str, micros: u64) {
        for entry in &mut self.stages {
            if entry.0 == stage {
                entry.1 = entry.1.saturating_add(micros);
                return;
            }
        }
        self.stages.push((stage, micros));
    }

    /// The recorded stages so far, in first-recording order.
    pub fn stages(&self) -> &[(&'static str, u64)] {
        &self.stages
    }

    /// Sum of all recorded stage durations.
    pub fn stage_total_micros(&self) -> u64 {
        self.stages
            .iter()
            .fold(0u64, |acc, (_, us)| acc.saturating_add(*us))
    }

    /// Microseconds since the trace was created.
    pub fn elapsed_micros(&self) -> u64 {
        clock::micros_since(self.started)
    }

    /// Closes the trace into an event ready for the ring log.
    pub fn finish(self, endpoint: &str, status: u16) -> TraceEvent {
        let total_us = self.elapsed_micros();
        TraceEvent {
            trace_id: self.id,
            endpoint: endpoint.to_string(),
            status,
            total_us,
            stages: self.stages,
        }
    }
}

/// A completed trace: plain data with a canonical JSONL rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Deterministic per-process trace ID.
    pub trace_id: u64,
    /// The endpoint that served the request (e.g. `/ppr`).
    pub endpoint: String,
    /// HTTP status of the response.
    pub status: u16,
    /// Total wall-clock duration of the request, in microseconds.
    pub total_us: u64,
    /// Stage durations in recording order, in microseconds.
    pub stages: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// Renders the event as one JSON line (no trailing newline).  Key order
    /// is fixed, so the output is byte-stable given the same measurements.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"trace_id\":");
        out.push_str(&self.trace_id.to_string());
        out.push_str(",\"endpoint\":\"");
        out.push_str(&escape_json(&self.endpoint));
        out.push_str("\",\"status\":");
        out.push_str(&self.status.to_string());
        out.push_str(",\"total_us\":");
        out.push_str(&self.total_us.to_string());
        out.push_str(",\"stages_us\":{");
        let mut first = true;
        for (stage, us) in &self.stages {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&escape_json(stage));
            out.push_str("\":");
            out.push_str(&us.to_string());
        }
        out.push_str("}}");
        out
    }
}

/// Bounded ring buffer of completed [`TraceEvent`]s.
///
/// Capacity 0 disables the log entirely (pushes are dropped without taking
/// the lock).  On overflow the **oldest** event is evicted, so a dump shows
/// the most recent window of traffic.
#[derive(Debug)]
pub struct TraceLog {
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl TraceLog {
    /// A log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest if the ring is full.  No-op at
    /// capacity 0.
    pub fn push(&self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        // Bounded by the eviction above: len < capacity here.
        ring.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            // nrp-lint: allow(K001) — `VecDeque::len` on the guard, not a re-entrant `TraceLog::len`
            .len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every retained event as JSONL, oldest first (one event per
    /// line, trailing newline after each).
    pub fn dump_jsonl(&self) -> String {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for event in ring.iter() {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4u32, 0] {
                    let nibble = (b >> shift) & 0xF;
                    out.push(char::from_digit(nibble, 16).unwrap_or('0'));
                }
            }
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_sequential_from_one() {
        let ids = TraceIds::new();
        assert_eq!(ids.next_id(), 1);
        assert_eq!(ids.next_id(), 2);
        assert_eq!(ids.next_id(), 3);
    }

    #[test]
    fn spans_record_into_the_trace() {
        let mut trace = TraceContext::new(7);
        let span = Span::start("parse");
        span.finish(&mut trace);
        trace.record("compute", 120);
        trace.record("compute", 30);
        assert_eq!(trace.id(), 7);
        assert_eq!(trace.stages().len(), 2);
        assert_eq!(trace.stages()[0].0, "parse");
        assert_eq!(
            trace.stages()[1],
            ("compute", 150),
            "same stage accumulates"
        );
        assert!(trace.stage_total_micros() >= 150);
        assert!(trace.elapsed_micros() >= trace.stages()[0].1);
    }

    #[test]
    fn event_json_line_is_canonical() {
        let event = TraceEvent {
            trace_id: 42,
            endpoint: "/ppr".to_string(),
            status: 200,
            total_us: 950,
            stages: vec![("parse", 10), ("kernel_compute", 900)],
        };
        assert_eq!(
            event.to_json_line(),
            "{\"trace_id\":42,\"endpoint\":\"/ppr\",\"status\":200,\"total_us\":950,\
             \"stages_us\":{\"parse\":10,\"kernel_compute\":900}}"
        );
    }

    #[test]
    fn finish_produces_an_event_with_total_at_least_stage_sum_lower_bound() {
        let mut trace = TraceContext::new(1);
        trace.record("a", 0);
        let event = trace.finish("/ppr", 200);
        assert_eq!(event.trace_id, 1);
        assert_eq!(event.endpoint, "/ppr");
        assert_eq!(event.status, 200);
        assert_eq!(event.stages, vec![("a", 0)]);
    }

    #[test]
    fn ring_evicts_oldest_and_dumps_jsonl() {
        let log = TraceLog::new(2);
        for i in 1..=3u64 {
            log.push(TraceEvent {
                trace_id: i,
                endpoint: "/ppr".to_string(),
                status: 200,
                total_us: i * 10,
                stages: Vec::new(),
            });
        }
        assert_eq!(log.len(), 2);
        let dump = log.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"trace_id\":2"), "oldest retained is #2");
        assert!(lines[1].contains("\"trace_id\":3"));
    }

    #[test]
    fn zero_capacity_ring_is_disabled() {
        let log = TraceLog::new(0);
        log.push(TraceEvent {
            trace_id: 1,
            endpoint: "/x".to_string(),
            status: 200,
            total_us: 1,
            stages: Vec::new(),
        });
        assert!(log.is_empty());
        assert_eq!(log.dump_jsonl(), "");
    }

    #[test]
    fn json_escaping_covers_specials() {
        let event = TraceEvent {
            trace_id: 1,
            endpoint: "a\"b\\c\nd\u{1}".to_string(),
            status: 200,
            total_us: 0,
            stages: Vec::new(),
        };
        let line = event.to_json_line();
        assert!(line.contains("a\\\"b\\\\c\\nd\\u0001"));
    }
}
