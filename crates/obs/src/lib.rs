//! # nrp-obs — telemetry substrate for the NRP workspace
//!
//! A zero-dependency (std-only) observability layer sitting **below** every
//! other workspace crate, so the worker pool, the embedding context, the
//! serving layer and the bench harness all report through one vocabulary:
//!
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges and
//!   log-linear-bucket histograms.  The record path is a single relaxed
//!   atomic op on a pre-resolved instrument; snapshots are plain data
//!   rendered to Prometheus text (`GET /metrics`) or converted to JSON by
//!   the server (`/stats`).  A disabled [`MetricsHandle`] turns every
//!   instrument into a no-op, which is how the ≤-few-percent overhead
//!   contract is enforced structurally.
//! * [`trace`] — [`Span`]/[`TraceContext`] per-request latency attribution
//!   with **deterministic IDs** (a per-process counter, no wall clock or RNG
//!   in identity), completed into [`TraceEvent`]s retained by a bounded
//!   [`TraceLog`] ring and dumped as JSONL (`GET /debug/traces`).
//! * [`clock`] — the workspace's **single designated wall-clock owner**.
//!   [`clock::now`] is the only sanctioned non-test `Instant::now()` call
//!   site (lint rules D002/O001 enforce the boundary); [`StageClock`]
//!   (migrated here from `nrp-core`) records per-stage timings for
//!   embedding runs.
//!
//! ## Determinism contract
//!
//! Telemetry never feeds a computed value: durations, counts and gauges are
//! write-only from kernel code's perspective.  Identity (trace IDs, metric
//! names, label sets, export ordering) is fully deterministic — exports
//! iterate `BTreeMap`s, never hash order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::{StageClock, StageTiming};
pub use metrics::{
    Counter, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricsHandle,
    MetricsRegistry, MetricsSnapshot, SeriesSnapshot, SeriesValue,
};
pub use trace::{Span, TraceContext, TraceEvent, TraceIds, TraceLog};
