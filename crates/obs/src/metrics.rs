//! Metrics registry: named counters, gauges, and log-linear histograms.
//!
//! The design splits into a **hot path** and a **cold path**:
//!
//! * Hot path — [`Counter::inc`], [`Gauge::set`], [`Histogram::observe`] are
//!   single relaxed atomic operations on pre-resolved `Arc`s.  No lock, no
//!   allocation, no branch beyond the no-op check.  Instruments are resolved
//!   once at subsystem construction (server startup, pool creation), never
//!   per request.
//! * Cold path — registration and [`MetricsRegistry::snapshot`] take the
//!   registry mutex.  Snapshots read every atomic exactly once and hand back
//!   plain-data structs, so rendering (Prometheus text, `/stats` JSON) works
//!   on an immutable copy.
//!
//! Every instrument has a **no-op form** (`Counter::noop()` etc. — the
//! `Default`): recording into it is a branch on `None` and nothing else.
//! This is how telemetry is disabled wholesale — hand out a disabled
//! [`MetricsHandle`] and the entire subsystem records into no-ops.
//!
//! ## Histogram bucketing
//!
//! Histograms use **log-linear** buckets: values `0..4` get exact buckets,
//! and every power-of-two octave above that is split into 4 linear
//! sub-buckets, capping the relative quantile error at 25%.  The scheme is
//! value-agnostic but every histogram in this workspace records
//! **microseconds**.  Values at or above `2^32` land in one overflow bucket
//! rendered as `+Inf`.
//!
//! ## Determinism
//!
//! Registries order families and label sets with `BTreeMap`s, so exports are
//! byte-stable for a given set of recorded values — no hash-order iteration
//! (lint rule D001 applies to this crate like everywhere else).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of histogram buckets: 4 exact buckets for values `0..4`, then 30
/// octaves × 4 linear sub-buckets covering `4..2^32`, then one overflow
/// bucket (rendered as `+Inf`).
pub const HIST_BUCKETS: usize = 125;

const SUB: u64 = 4;
const SUB_SHIFT: u32 = 2;

/// Maps a recorded value to its bucket index (always `< HIST_BUCKETS`).
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = (msb - SUB_SHIFT) as usize;
    let sub = ((value >> (msb - SUB_SHIFT)) - SUB) as usize;
    (SUB as usize + octave * SUB as usize + sub).min(HIST_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `index`, or `None` for the overflow
/// (`+Inf`) bucket.  Bounds are strictly increasing in `index`.
pub fn bucket_upper_bound(index: usize) -> Option<u64> {
    if index >= HIST_BUCKETS - 1 {
        return None;
    }
    let i = index as u64;
    if i < SUB {
        return Some(i);
    }
    let octave = (i - SUB) / SUB;
    let sub = (i - SUB) % SUB;
    Some(((SUB + sub + 1) << octave) - 1)
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.  Cloning shares the underlying cell;
/// the `Default` is a no-op instrument that records nothing.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// An instrument that silently discards every update.
    pub fn noop() -> Self {
        Self(None)
    }

    /// True if updates are recorded anywhere (false for no-ops).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a no-op instrument).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge: a value that can go up and down.  Cloning shares the underlying
/// cell; the `Default` is a no-op instrument.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// An instrument that silently discards every update.
    pub fn noop() -> Self {
        Self(None)
    }

    /// True if updates are recorded anywhere (false for no-ops).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        if let Some(cell) = &self.0 {
            let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
        }
    }

    /// The current value (0 for a no-op instrument).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A log-linear-bucket histogram (see the module docs for the bucketing
/// scheme).  Cloning shares the underlying cells; the `Default` is a no-op
/// instrument.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// An instrument that silently discards every update.
    pub fn noop() -> Self {
        Self(None)
    }

    /// A live histogram not attached to any registry (snapshots work, but it
    /// is never exported).  Used by tests and as the kind-mismatch fallback.
    pub fn detached() -> Self {
        Self(Some(Arc::new(HistogramCore::new())))
    }

    /// True if updates are recorded anywhere (false for no-ops).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.observe(value);
        }
    }

    /// A consistent copy of the current bucket counts and sum (empty for a
    /// no-op instrument).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |core| core.snapshot())
    }
}

/// Plain-data copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HIST_BUCKETS],
            sum: 0,
        }
    }

    /// Per-bucket (non-cumulative) observation counts, `HIST_BUCKETS` long.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Adds every bucket of `other` into `self` (the merge of two
    /// histograms observes the union of their samples).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The approximate `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the nearest-rank sample.  Returns 0 with no
    /// observations and `u64::MAX` when the rank lands in the overflow
    /// bucket.  The bucketing bounds the relative error at 25%.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Value that can go up and down.
    Gauge,
    /// Log-linear-bucket distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum SeriesCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<Vec<(String, String)>, SeriesCell>,
}

/// A process- or server-scoped collection of named metric families.
///
/// Registration is **idempotent**: asking twice for the same
/// `(name, labels)` returns instruments sharing one cell, so independent
/// subsystems may resolve the same metric.  Registering an existing name
/// with a *different kind* is a programming error; rather than panicking
/// (the serving path must stay panic-free) the registry hands back a live
/// but detached instrument that is never exported.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared registry (created on first use).  Servers
    /// normally scope a registry per instance instead so tests stay
    /// isolated; the global exists for offline binaries that want one
    /// ambient sink.
    pub fn global() -> Arc<MetricsRegistry> {
        static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())))
    }

    /// Registers (or resolves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or resolves) a counter with the given label pairs.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Counter,
            series: BTreeMap::new(),
        });
        if family.kind != MetricKind::Counter {
            return Counter(Some(Arc::new(AtomicU64::new(0))));
        }
        let cell = family
            .series
            .entry(owned_labels(labels))
            .or_insert_with(|| SeriesCell::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            SeriesCell::Counter(c) => Counter(Some(Arc::clone(c))),
            _ => Counter(Some(Arc::new(AtomicU64::new(0)))),
        }
    }

    /// Registers (or resolves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or resolves) a gauge with the given label pairs.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Gauge,
            series: BTreeMap::new(),
        });
        if family.kind != MetricKind::Gauge {
            return Gauge(Some(Arc::new(AtomicU64::new(0))));
        }
        let cell = family
            .series
            .entry(owned_labels(labels))
            .or_insert_with(|| SeriesCell::Gauge(Arc::new(AtomicU64::new(0))));
        match cell {
            SeriesCell::Gauge(c) => Gauge(Some(Arc::clone(c))),
            _ => Gauge(Some(Arc::new(AtomicU64::new(0)))),
        }
    }

    /// Registers (or resolves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or resolves) a histogram with the given label pairs.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Histogram,
            series: BTreeMap::new(),
        });
        if family.kind != MetricKind::Histogram {
            return Histogram::detached();
        }
        let cell = family
            .series
            .entry(owned_labels(labels))
            .or_insert_with(|| SeriesCell::Histogram(Arc::new(HistogramCore::new())));
        match cell {
            SeriesCell::Histogram(c) => Histogram(Some(Arc::clone(c))),
            _ => Histogram::detached(),
        }
    }

    /// A consistent plain-data copy of every registered family, ordered by
    /// family name and then label set.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        MetricsSnapshot {
            families: families
                .iter()
                .map(|(name, family)| FamilySnapshot {
                    name: name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    series: family
                        .series
                        .iter()
                        .map(|(labels, cell)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: match cell {
                                SeriesCell::Counter(c) => {
                                    // nrp-lint: allow(K003) — `AtomicU64::load`, not a workspace `load`: lock-free
                                    SeriesValue::Counter(c.load(Ordering::Relaxed))
                                }
                                SeriesCell::Gauge(c) => {
                                    // nrp-lint: allow(K003) — `AtomicU64::load`, not a workspace `load`: lock-free
                                    SeriesValue::Gauge(c.load(Ordering::Relaxed))
                                }
                                SeriesCell::Histogram(c) => {
                                    // nrp-lint: allow(K001) — `HistogramCore::snapshot` reads atomics only; not a re-entrant registry snapshot
                                    // nrp-lint: allow(K003) — `HistogramCore::snapshot` reads atomics only; it cannot block
                                    SeriesValue::Histogram(c.snapshot())
                                }
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

/// A cheap, clonable, possibly-disabled reference to a [`MetricsRegistry`].
///
/// This is the type threaded through constructors (`EmbedContext`, the
/// worker pool, the batcher): subsystems resolve their instruments from it
/// once at startup.  A disabled handle (`MetricsHandle::default()` /
/// [`MetricsHandle::noop`]) resolves every instrument to a no-op, so the
/// telemetry cost of an uninstrumented run is one `None` branch per record.
#[derive(Clone, Debug, Default)]
pub struct MetricsHandle {
    registry: Option<Arc<MetricsRegistry>>,
}

impl MetricsHandle {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Self::default()
    }

    /// A handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Self {
            registry: Some(Arc::new(MetricsRegistry::new())),
        }
    }

    /// A handle backed by an existing registry.
    pub fn from_registry(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            registry: Some(registry),
        }
    }

    /// A handle backed by the process-wide registry.
    pub fn global() -> Self {
        Self::from_registry(MetricsRegistry::global())
    }

    /// True if updates through this handle are recorded anywhere.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, if enabled.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// Registers (or resolves) an unlabeled counter; no-op when disabled.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or resolves) a labeled counter; no-op when disabled.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.registry
            .as_ref()
            .map_or_else(Counter::noop, |r| r.counter_with(name, help, labels))
    }

    /// Registers (or resolves) an unlabeled gauge; no-op when disabled.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or resolves) a labeled gauge; no-op when disabled.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.registry
            .as_ref()
            .map_or_else(Gauge::noop, |r| r.gauge_with(name, help, labels))
    }

    /// Registers (or resolves) an unlabeled histogram; no-op when disabled.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or resolves) a labeled histogram; no-op when disabled.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.registry
            .as_ref()
            .map_or_else(Histogram::noop, |r| r.histogram_with(name, help, labels))
    }

    /// A snapshot of the backing registry (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry
            .as_ref()
            .map_or_else(MetricsSnapshot::default, |r| r.snapshot())
    }
}

// ---------------------------------------------------------------------------
// Snapshots and Prometheus rendering
// ---------------------------------------------------------------------------

/// One series' current value inside a [`FamilySnapshot`].
#[derive(Debug, Clone)]
pub enum SeriesValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One labeled series of a family.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The series' value at snapshot time.
    pub value: SeriesValue,
}

/// Plain-data copy of one metric family.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Family name (e.g. `nrp_serve_request_latency_us`).
    pub name: String,
    /// One-line description for `# HELP`.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// The family's series.
    pub series: Vec<SeriesSnapshot>,
}

/// Plain-data copy of a whole registry, plus any families a caller derives
/// from other sources (e.g. the server's request counters) before rendering.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// The families, ordered by name.
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    /// Appends a derived family (callers should re-sort via
    /// [`MetricsSnapshot::render_prometheus`], which orders by name).
    pub fn push_family(&mut self, family: FamilySnapshot) {
        self.families.push(family);
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`text/plain; version=0.0.4`).  Families are emitted sorted by name;
    /// histogram `le` lines are emitted only for non-empty buckets (plus the
    /// mandatory `+Inf`), keeping scrapes proportional to the distinct
    /// magnitudes actually observed.
    pub fn render_prometheus(&self) -> String {
        let mut order: Vec<usize> = (0..self.families.len()).collect();
        order.sort_by(|&a, &b| {
            let name_a = self.families.get(a).map(|f| f.name.as_str()).unwrap_or("");
            let name_b = self.families.get(b).map(|f| f.name.as_str()).unwrap_or("");
            name_a.cmp(name_b)
        });
        let mut out = String::new();
        for idx in order {
            let Some(family) = self.families.get(idx) else {
                continue;
            };
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for series in &family.series {
                match &series.value {
                    SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                        out.push_str(&family.name);
                        push_labelset(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SeriesValue::Histogram(hist) => {
                        render_histogram(&mut out, &family.name, &series.labels, hist);
                    }
                }
            }
        }
        out
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    hist: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (i, count) in hist.buckets().iter().enumerate() {
        cumulative += count;
        if *count == 0 {
            continue;
        }
        if let Some(le) = bucket_upper_bound(i) {
            out.push_str(name);
            out.push_str("_bucket");
            push_labelset(out, labels, Some(&le.to_string()));
            out.push(' ');
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
    }
    let total = hist.count();
    out.push_str(name);
    out.push_str("_bucket");
    push_labelset(out, labels, Some("+Inf"));
    out.push(' ');
    out.push_str(&total.to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum");
    push_labelset(out, labels, None);
    out.push(' ');
    out.push_str(&hist.sum().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_count");
    push_labelset(out, labels, None);
    out.push(' ');
    out.push_str(&total.to_string());
    out.push('\n');
}

fn push_labelset(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        // Exact buckets for small values.
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), Some(v));
        }
        // Every bucket's bounds map back to the bucket itself: the inclusive
        // upper bound, and one-past the previous bucket's bound.
        let mut prev_le = None;
        for i in 0..HIST_BUCKETS - 1 {
            let le = bucket_upper_bound(i).expect("finite bucket");
            assert_eq!(bucket_index(le), i, "upper bound of bucket {i}");
            if let Some(prev) = prev_le {
                assert!(le > prev, "bounds strictly increase at {i}");
                assert_eq!(bucket_index(prev + 1), i, "lower edge of bucket {i}");
            }
            prev_le = Some(le);
        }
        // Values past the last finite bound land in the overflow bucket.
        let last = bucket_upper_bound(HIST_BUCKETS - 2).expect("finite bucket");
        assert_eq!(last, u64::from(u32::MAX));
        assert_eq!(bucket_index(last + 1), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), None);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // The log-linear scheme promises <= 25% relative error: the bucket
        // containing v has width <= v/4 for v >= 4.
        for v in [4u64, 7, 9, 100, 1023, 65_536, 1_000_000, 4_000_000_000] {
            let i = bucket_index(v);
            let le = bucket_upper_bound(i).expect("finite");
            let lower = if i == 0 {
                0
            } else {
                bucket_upper_bound(i - 1).map_or(0, |p| p + 1)
            };
            assert!(lower <= v && v <= le, "bucket {i} contains {v}");
            assert!(
                (le - lower) as f64 <= (v as f64) * 0.25 + 1.0,
                "bucket width {} too wide for value {v}",
                le - lower
            );
        }
    }

    #[test]
    fn histogram_observe_merge_and_quantiles() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        for v in [1u64, 2, 3, 100] {
            a.observe(v);
        }
        // 5e12 is far past the last finite bucket bound (2^32 - 1), so it
        // exercises the overflow bucket without overflowing the sum.
        for v in [1_000u64, 50_000, 5_000_000_000_000] {
            b.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.sum(), 106 + 51_000 + 5_000_000_000_000u64);
        // Merged bucket counts equal the sum of the parts, bucket by bucket.
        let (sa, sb) = (a.snapshot(), b.snapshot());
        for i in 0..HIST_BUCKETS {
            assert_eq!(merged.buckets()[i], sa.buckets()[i] + sb.buckets()[i]);
        }
        // Quantiles: rank math over cumulative buckets.
        assert_eq!(
            merged.quantile(0.0),
            bucket_upper_bound(bucket_index(1)).unwrap()
        );
        assert!(merged.quantile(0.5) >= 3);
        assert_eq!(merged.quantile(1.0), u64::MAX, "max lands in overflow");
        assert_eq!(HistogramSnapshot::empty().quantile(0.99), 0);
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("nrp_test_concurrent_total", "Concurrency test.");
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), threads * per_thread);
        // A second resolution of the same name sees the same cell.
        let again = registry.counter("nrp_test_concurrent_total", "Concurrency test.");
        assert_eq!(again.value(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_observations_are_exact() {
        let hist = Histogram::detached();
        let threads = 4;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        hist.observe(t * per_thread + i);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        assert_eq!(snap.count(), threads * per_thread);
    }

    #[test]
    fn noop_instruments_record_nothing() {
        let counter = Counter::noop();
        counter.inc();
        counter.add(5);
        assert_eq!(counter.value(), 0);
        let gauge = Gauge::noop();
        gauge.set(3);
        gauge.add(2);
        gauge.sub(1);
        assert_eq!(gauge.value(), 0);
        let hist = Histogram::noop();
        hist.observe(42);
        assert_eq!(hist.snapshot().count(), 0);
        let handle = MetricsHandle::noop();
        assert!(!handle.is_enabled());
        assert_eq!(handle.counter("x", "y").value(), 0);
        assert!(handle.snapshot().families.is_empty());
    }

    #[test]
    fn gauge_set_add_sub() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("nrp_test_gauge", "Gauge test.");
        gauge.set(10);
        gauge.add(5);
        gauge.sub(3);
        assert_eq!(gauge.value(), 12);
        gauge.sub(100);
        assert_eq!(gauge.value(), 0, "sub saturates at zero");
    }

    #[test]
    fn kind_mismatch_returns_detached_instruments() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("nrp_test_family", "First registration wins.");
        counter.inc();
        // Same name, different kind: live but unexported instruments.
        let gauge = registry.gauge("nrp_test_family", "Mismatch.");
        gauge.set(99);
        let hist = registry.histogram("nrp_test_family", "Mismatch.");
        hist.observe(1);
        let snap = registry.snapshot();
        assert_eq!(snap.families.len(), 1);
        match &snap.families[0].series[0].value {
            SeriesValue::Counter(v) => assert_eq!(*v, 1),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn prometheus_text_format_golden() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with(
                "nrp_test_requests_total",
                "Total requests.",
                &[("endpoint", "ppr")],
            )
            .add(3);
        registry
            .counter_with(
                "nrp_test_requests_total",
                "Total requests.",
                &[("endpoint", "knn")],
            )
            .add(1);
        registry
            .gauge("nrp_test_queue_depth", "Jobs waiting.")
            .set(7);
        let hist =
            registry.histogram_with("nrp_test_latency_us", "Latency.", &[("endpoint", "ppr")]);
        for v in [0u64, 1, 4, 9, 1_000_000] {
            hist.observe(v);
        }
        let text = registry.snapshot().render_prometheus();
        let expected = "\
# HELP nrp_test_latency_us Latency.
# TYPE nrp_test_latency_us histogram
nrp_test_latency_us_bucket{endpoint=\"ppr\",le=\"0\"} 1
nrp_test_latency_us_bucket{endpoint=\"ppr\",le=\"1\"} 2
nrp_test_latency_us_bucket{endpoint=\"ppr\",le=\"4\"} 3
nrp_test_latency_us_bucket{endpoint=\"ppr\",le=\"9\"} 4
nrp_test_latency_us_bucket{endpoint=\"ppr\",le=\"1048575\"} 5
nrp_test_latency_us_bucket{endpoint=\"ppr\",le=\"+Inf\"} 5
nrp_test_latency_us_sum{endpoint=\"ppr\"} 1000014
nrp_test_latency_us_count{endpoint=\"ppr\"} 5
# HELP nrp_test_queue_depth Jobs waiting.
# TYPE nrp_test_queue_depth gauge
nrp_test_queue_depth 7
# HELP nrp_test_requests_total Total requests.
# TYPE nrp_test_requests_total counter
nrp_test_requests_total{endpoint=\"knn\"} 1
nrp_test_requests_total{endpoint=\"ppr\"} 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_and_help_escaping() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with(
                "nrp_test_escapes",
                "Line\nbreak \\ slash.",
                &[("path", "a\"b\\c\nd")],
            )
            .inc();
        let text = registry.snapshot().render_prometheus();
        assert!(text.contains("# HELP nrp_test_escapes Line\\nbreak \\\\ slash."));
        assert!(text.contains("nrp_test_escapes{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn derived_families_render_alongside_registry_families() {
        let registry = MetricsRegistry::new();
        registry
            .counter("nrp_test_zzz", "Last alphabetically.")
            .inc();
        let mut snap = registry.snapshot();
        snap.push_family(FamilySnapshot {
            name: "nrp_test_aaa".to_string(),
            help: "Derived.".to_string(),
            kind: MetricKind::Gauge,
            series: vec![SeriesSnapshot {
                labels: Vec::new(),
                value: SeriesValue::Gauge(5),
            }],
        });
        let text = snap.render_prometheus();
        let aaa = text.find("nrp_test_aaa").expect("derived family present");
        let zzz = text.find("nrp_test_zzz").expect("registry family present");
        assert!(aaa < zzz, "families are sorted by name");
    }
}
