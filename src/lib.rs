//! # nrp — Reweighted Personalized PageRank network embedding
//!
//! Umbrella crate re-exporting the workspace's public API.  This is the crate
//! downstream users depend on; the individual `nrp-*` crates can also be used
//! directly for finer-grained dependencies.
//!
//! The primary API is declarative: describe a method as a
//! [`MethodConfig`](nrp_core::config::MethodConfig) (directly, or parsed from
//! JSON/TOML), build it through the method registry, and run it under an
//! [`EmbedContext`](nrp_core::context::EmbedContext) that controls seed,
//! thread budget and cancellation.  See the
//! [`quickstart`](../examples/quickstart.rs) example for a tour.
//!
//! ```
//! use nrp::prelude::*;
//!
//! // Register all eleven methods (NRP, ApproxPPR and the nine baselines).
//! nrp::init();
//!
//! // Build a tiny graph and embed it with a config that could equally have
//! // come from a JSON or TOML experiment file. Unspecified fields take the
//! // paper's defaults.
//! let graph = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], GraphKind::Undirected).unwrap();
//! let config: MethodConfig =
//!     serde_json::from_str(r#"{"method": "NRP", "dimension": 8, "seed": 7}"#).unwrap();
//! let embedder = config.build().unwrap();
//!
//! let output = embedder.embed(&graph, &EmbedContext::new().with_threads(2)).unwrap();
//! assert_eq!(output.embedding().num_nodes(), 5);
//! assert_eq!(output.metadata().config.method_name(), "NRP");
//! assert!(output.metadata().stage("approx_ppr").is_some());
//! ```

pub use nrp_baselines as baselines;
pub use nrp_core as core;
pub use nrp_eval as eval;
pub use nrp_graph as graph;
pub use nrp_linalg as linalg;

/// Registers every embedding method of the workspace with the `nrp-core`
/// method registry, so [`MethodConfig::build`](nrp_core::MethodConfig::build)
/// can resolve all eleven method names.  Idempotent; call once at startup.
pub fn init() {
    nrp_baselines::register_baselines();
}

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use nrp_baselines::register_baselines;
    pub use nrp_baselines::{
        app::App, arope::Arope, deepwalk::DeepWalk, line::Line, node2vec::Node2Vec, randne::RandNe,
        spectral::SpectralEmbedding, strap::Strap, verse::Verse,
    };
    pub use nrp_core::{
        approx_ppr::{ApproxPpr, ApproxPprParams},
        config::{register_method, registered_methods, MethodConfig},
        context::{EmbedContext, EmbedOutput, RunMetadata, StageClock, StageTiming},
        embedding::{Embedder, Embedding},
        error::NrpError,
        nrp::{Nrp, NrpParams},
        ppr::PprMatrix,
    };
    pub use nrp_eval::{
        classification::{ClassificationConfig, NodeClassification},
        link_prediction::{LinkPrediction, LinkPredictionConfig, ScoringStrategy},
        reconstruction::{GraphReconstruction, ReconstructionConfig},
    };
    pub use nrp_graph::{generators, Graph, GraphError, GraphKind, NodeId};
}
