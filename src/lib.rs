//! # nrp — Reweighted Personalized PageRank network embedding
//!
//! Umbrella crate re-exporting the workspace's public API.  This is the crate
//! downstream users depend on; the individual `nrp-*` crates can also be used
//! directly for finer-grained dependencies.
//!
//! The primary API is declarative: describe a method as a
//! [`MethodConfig`](nrp_core::config::MethodConfig) (directly, or parsed from
//! JSON/TOML), build it through the method registry, and run it under an
//! [`EmbedContext`](nrp_core::context::EmbedContext) that controls seed,
//! thread budget and cancellation.  See the
//! [`quickstart`](../examples/quickstart.rs) example for a tour.
//!
//! ```
//! use nrp::prelude::*;
//!
//! // Register all eleven methods (NRP, ApproxPPR and the nine baselines).
//! nrp::init();
//!
//! // Build a tiny graph and embed it with a config that could equally have
//! // come from a JSON or TOML experiment file. Unspecified fields take the
//! // paper's defaults.
//! let graph = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], GraphKind::Undirected).unwrap();
//! let config: MethodConfig =
//!     serde_json::from_str(r#"{"method": "NRP", "dimension": 8, "seed": 7}"#).unwrap();
//! let embedder = config.build().unwrap();
//!
//! let output = embedder.embed(&graph, &EmbedContext::new().with_threads(2)).unwrap();
//! assert_eq!(output.embedding().num_nodes(), 5);
//! assert_eq!(output.metadata().config.method_name(), "NRP");
//! assert!(output.metadata().stage("approx_ppr").is_some());
//! ```
//!
//! ## Parallelism & determinism
//!
//! [`EmbedContext::with_threads`](nrp_core::context::EmbedContext::with_threads)
//! grants a thread budget that every heavy stage spends: the randomized
//! block-Krylov SVD (block matmuls, Krylov basis construction, projection),
//! the PPR propagations of ApproxPPR/NRP/RandNE, STRAP's per-source forward
//! pushes, and DeepWalk/node2vec walk generation.  The contract is strict:
//! **the embedding is bitwise identical for every budget, including 1** —
//! threads only move the wall clock.  Three mechanisms deliver this (all
//! built on [`nrp_core::parallel`], re-exported from `nrp-linalg`):
//!
//! * work is split into chunks whose boundaries depend only on the problem
//!   size, merged in ascending chunk order, so floating-point sums are always
//!   grouped the same way;
//! * each output row/chunk is computed by exactly one worker with a fixed
//!   inner iteration order;
//! * random-walk generation uses **per-node RNG streams**
//!   (`ChaCha8 seeded with seed ⊕ node_id`), so a walk's randomness depends
//!   only on the seed and its start node, never on scheduling.
//!
//! [`RunMetadata`](nrp_core::context::RunMetadata) records the thread count
//! of each stage alongside its wall-clock time.
//!
//! **Dangling nodes** (out-degree zero) follow an explicit
//! [`DanglingPolicy`](nrp_core::DanglingPolicy): by default a random walk
//! that reaches one terminates *there* (the node carries an implicit
//! self-loop), so every PPR row sums to 1 and no probability mass leaks out
//! of the truncated series; `DanglingPolicy::Teleport` jumps to a uniformly
//! random node instead (the PageRank classic, also mass-conserving), and the
//! literal zero-row matrix remains available as `DanglingPolicy::ZeroRow`.
//! The policy is part of the NRP/ApproxPPR configuration — a JSON or TOML
//! document selects it with `"dangling": "self-loop" | "teleport" |
//! "zero-row"`.
//!
//! ## Config-file-driven benchmark sweeps
//!
//! The paper's evaluation is a (method × dataset × hyper-parameter) grid;
//! `nrp-bench` makes that grid a *data* change.  Every `fig*`/`table*`
//! binary accepts `--config <file.json|file.toml>` pointing at a
//! `SweepSpec` document: sweep-level fields (`name`, `scale`, `datasets`,
//! `dimension`, `seeds`, `repeats`, `threads`) plus a `methods` list of
//! [`MethodConfig`](nrp_core::MethodConfig) entries that replaces the bin's
//! hard-coded roster.  `fig7_running_time --config …` runs the full grid
//! through the shared `SweepRunner` and streams one
//! [`RunMetadata`](nrp_core::RunMetadata) record per run as RFC-4180 CSV
//! (method, effective config as JSON, seed, thread budget, per-stage wall
//! clock, total).  Checked-in samples live under `configs/`:
//! `fig7.json`/`fig7.toml` reproduce the Fig. 7 roster (including the
//! reduced walk budgets of the sampling-based competitors), `fig10.json`
//! the thread-budget ladder, and `smoke.json` the tiny sweep CI runs.
//!
//! ```text
//! cargo run --release -p nrp-bench --bin fig7_running_time -- \
//!     --scale tiny --config configs/fig7.json
//! ```
//!
//! Explicit flags (`--scale`, `--dim`, `--seed`, `--threads`) win over the
//! corresponding sweep-level fields; unknown or malformed flags print a
//! usage message naming the flag and exit non-zero.
//!
//! **Cancellation** is cooperative and fine-grained: besides stage
//! boundaries, the SGNS/NCE training loops (DeepWalk, node2vec, LINE, VERSE,
//! APP) check the flag every 1024 SGD steps, so even a single enormous epoch
//! aborts in milliseconds, and STRAP's push fan-out checks it before every
//! source (latency bounded by one forward-push pair).

pub use nrp_baselines as baselines;
pub use nrp_core as core;
pub use nrp_eval as eval;
pub use nrp_graph as graph;
pub use nrp_linalg as linalg;

/// Registers every embedding method of the workspace with the `nrp-core`
/// method registry, so [`MethodConfig::build`](nrp_core::MethodConfig::build)
/// can resolve all eleven method names.  Idempotent; call once at startup.
pub fn init() {
    nrp_baselines::register_baselines();
}

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use nrp_baselines::register_baselines;
    pub use nrp_baselines::{
        app::App, arope::Arope, deepwalk::DeepWalk, line::Line, node2vec::Node2Vec, randne::RandNe,
        spectral::SpectralEmbedding, strap::Strap, verse::Verse,
    };
    pub use nrp_core::{
        approx_ppr::{ApproxPpr, ApproxPprParams},
        config::{register_method, registered_methods, MethodConfig},
        context::{EmbedContext, EmbedOutput, RunMetadata, StageClock, StageTiming},
        embedding::{Embedder, Embedding},
        error::NrpError,
        nrp::{Nrp, NrpParams},
        ppr::PprMatrix,
    };
    pub use nrp_eval::{
        classification::{ClassificationConfig, NodeClassification},
        link_prediction::{LinkPrediction, LinkPredictionConfig, ScoringStrategy},
        reconstruction::{GraphReconstruction, ReconstructionConfig},
    };
    pub use nrp_graph::{generators, Graph, GraphError, GraphKind, NodeId};
}
