//! # nrp — Reweighted Personalized PageRank network embedding
//!
//! Umbrella crate re-exporting the workspace's public API.  This is the crate
//! downstream users depend on; the individual `nrp-*` crates can also be used
//! directly for finer-grained dependencies.
//!
//! See the [`quickstart`](../examples/quickstart.rs) example for a tour.
//!
//! ```
//! use nrp::prelude::*;
//!
//! // Build a tiny graph and embed it with NRP.
//! let graph = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], GraphKind::Undirected).unwrap();
//! let params = NrpParams::builder().dimension(8).seed(7).build().unwrap();
//! let embedding = Nrp::new(params).embed(&graph).unwrap();
//! assert_eq!(embedding.num_nodes(), 5);
//! ```

pub use nrp_baselines as baselines;
pub use nrp_core as core;
pub use nrp_eval as eval;
pub use nrp_graph as graph;
pub use nrp_linalg as linalg;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use nrp_baselines::{
        app::App, arope::Arope, deepwalk::DeepWalk, line::Line, node2vec::Node2Vec,
        randne::RandNe, spectral::SpectralEmbedding, strap::Strap, verse::Verse,
    };
    pub use nrp_core::{
        approx_ppr::{ApproxPpr, ApproxPprParams},
        embedding::{Embedder, Embedding},
        nrp::{Nrp, NrpParams},
        ppr::PprMatrix,
    };
    pub use nrp_eval::{
        classification::{ClassificationConfig, NodeClassification},
        link_prediction::{LinkPrediction, LinkPredictionConfig},
        reconstruction::{GraphReconstruction, ReconstructionConfig},
    };
    pub use nrp_graph::{
        generators, Graph, GraphError, GraphKind, NodeId,
    };
}
